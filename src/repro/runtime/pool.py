"""Persistent shard worker pools with pipelined chunk dispatch.

The sharded runtime's ``fork`` executor pays a full fork-and-teardown per
``run()`` call — fine at trace scale, but it swamps small/interactive
traces and rules out a long-lived serving substrate.  :class:`ShardPool`
is that substrate: ``N`` **pre-forked** (or thread-backed) workers, each
holding a long-lived pipeline (or fabric lane) inherited copy-on-write at
spawn time, served over a framed request/response pipe protocol
(:class:`~repro.runtime.executors.ForkWorker`).

Instead of one monolithic task per run, a run is dispatched as
**pipelined chunks**: each worker has a dedicated writer thread pumping
requests from a :func:`~repro.runtime.overlap.prefetch`-staged stream, so
chunk ``k+1`` is being sliced *and shipped down the pipe* while the
worker scores chunk ``k`` — the double-buffering seam extended across the
process boundary.  Responses stream back per chunk and carry incremental
state deltas (:meth:`~repro.pisa.TaurusPipeline.state_delta`), so the
parent's pipelines track the workers chunk by chunk and per-message cost
stays bounded by the chunk itself, not the register file.

Lifecycle: the pool is a context manager; ``close()`` is deterministic
(EOF-then-reap with a bounded SIGKILL fallback, so an abandoned mid-trace
run cannot hang shutdown).

Failure model: a dead worker surfaces as EOF on the framed protocol; a
*hung* worker is caught by the parent-side watchdog (heartbeat frames
from a worker-side thread, plus per-``recv`` deadlines) and SIGKILLed so
it surfaces the same way.  During ``map_streams`` both are **recovered
from transparently**: chunks ride a bounded ack window, so on a crash
the pool re-forks a replacement from the parent's pipelines — which the
eagerly-applied state deltas hold at exactly the last *acked* chunk —
replays the sent-but-unacked chunks, and continues; merged results are
bit-identical to an unfaulted run.  A chunk that kills its worker
repeatedly raises a typed :class:`~repro.runtime.health.PoisonChunk`;
when replacements keep dying (or fork itself fails) the pool *degrades*
instead, scoring the shard's remaining chunks in the parent process.
Every failure and recovery action is counted on
:attr:`ShardPool.health` (a :class:`~repro.runtime.health.PoolHealth`)
— the only place a survived crash is visible.  Deterministic crash
schedules for tests come from :mod:`repro.runtime.faults`.
"""

from __future__ import annotations

import os
import queue
import signal
import sys
import threading
import time
from collections import deque
from typing import Callable, Iterable, Iterator, Sequence

from ..pisa.pipeline import TaurusPipeline
from .executors import (
    ERROR_REQUEST,
    ForkWorker,
    WorkerCrash,
    WorkerDispatchError,
)
from .faults import FAULT_REQUEST, FaultPlan
from .health import PoisonChunk, PoolError, PoolHealth
from .overlap import prefetch

__all__ = [
    "POOL_MODES",
    "ShardPool",
    "PipelineShardWorker",
    "LaneWorker",
    "pool_mode_for_executor",
    "resolve_pool_mode",
]

#: Accepted values for the ``mode`` knob.
POOL_MODES = ("auto", "fork", "thread")

#: Sentinel asking a slot's writer/worker thread to exit.
_SHUTDOWN = object()

#: Hard cap on per-slot request/response queues.  Real depth is tiny (one
#: stream per run plus a shutdown sentinel; responses ride the ack
#: window), so the cap never throttles a healthy pool — it exists so a
#: pathological caller fails loudly instead of growing memory unboundedly.
_SLOT_QUEUE_DEPTH = 64


def _bounded_put(q: "queue.Queue", item, give_up) -> bool:
    """Put in bounded slices; gives up (returns False) when told to.

    The lint discipline (``rt-unbounded-queue``) bans both unbounded
    queues and puts that can park forever on a full one: retrying in
    timed slices keeps the writer interruptible while ``give_up()``
    decides when waiting stops making sense (close deadline passed,
    receiver gone).
    """
    while True:
        try:
            q.put(item, timeout=0.1)
            return True
        except queue.Full:
            if give_up():
                return False


def resolve_pool_mode(mode: str) -> str:
    """Map a pool-mode request to the concrete strategy for this host."""
    if mode not in POOL_MODES:
        raise ValueError(f"unknown pool mode {mode!r}; pick one of {POOL_MODES}")
    if mode == "thread" or not hasattr(os, "fork"):
        return "thread"
    return "fork"


def pool_mode_for_executor(executor: str) -> str:
    """The pool mode a runtime ``executor`` knob implies.

    ``fork`` stays cross-process, ``thread``/``serial`` stay in-process,
    and anything else (``auto``) resolves per host — the one rule shared
    by every surface that grows a ``pool=True`` path.
    """
    if executor == "fork":
        return "fork"
    if executor in ("thread", "serial"):
        return "thread"
    return "auto"


# ----------------------------------------------------------------------
# Worker contexts (what lives inside each worker, across runs)
# ----------------------------------------------------------------------
class PipelineShardWorker:
    """One shard's long-lived pipeline plus its delta-tracking base.

    The ``handle()`` side of the pool protocol for the sharded runtime:

    * ``("chunk", (columns, want_delta))`` — one pre-sorted chunk through
      :meth:`~repro.pisa.TaurusPipeline.process_trace_batch`; returns
      ``(result, delta-or-None)``.
    * ``("score", features)`` — a read-only pass through the block's
      graph interpreter (no issue-clock accounting), the pool twin of
      ``TaurusDataPlane._score_chunks``.
    * ``("restore", snapshot)`` / ``("snapshot", None)`` — full state
      transport for arbitrary reset and verification;
    * ``("mark", None)`` / ``("rewind", None)`` — zero-payload per-run
      reset: ``mark`` pins the current state *inside* the worker and
      ``rewind`` restores it, so a pool owner wanting fresh-run
      semantics doesn't ship the register file down the pipe every run.
      Marks set on the context **before** spawning are inherited by the
      forked workers (and by crash replacements, which re-fork from the
      parent's context).
    """

    def __init__(self, pipeline: TaurusPipeline):
        self.pipeline = pipeline
        self._base: dict | None = None
        self._mark: dict | None = None

    def handle(self, kind: str, payload):
        if kind == "chunk":
            columns, want_delta = payload
            if want_delta and self._base is None:
                self._base = self.pipeline.state_snapshot()
            result = self.pipeline.process_trace_batch(
                columns, chunk_size=max(columns.n, 1)
            )
            delta = (
                self.pipeline.state_delta(self._base) if want_delta else None
            )
            return result, delta
        if kind == "score":  # noqa: rt-frame-unconsumed - produced by callers above the runtime package (apps submit scoring requests)
            return self.pipeline.block.graph.execute_batch(payload)[:, 0]
        if kind == "restore":
            self.pipeline.restore_state(payload)
            self._base = None
            return True
        if kind == "mark":
            self._mark = self.pipeline.state_snapshot()
            return True
        if kind == "rewind":
            if self._mark is None:
                raise RuntimeError("rewind without a mark")
            self.pipeline.restore_state(self._mark)
            self._base = None
            return True
        if kind == "snapshot":
            return self.pipeline.state_snapshot()
        if kind == "ping":  # noqa: rt-frame-unconsumed - produced by callers above the runtime package (liveness probes in tests/tools)
            return "pong"
        raise ValueError(f"unknown request kind {kind!r}")


class LaneWorker:
    """One fabric lane (shared block + per-app pipelines) behind the pool.

    ``("app_chunk", (app_index, columns, want_delta))`` steers the lane's
    shared block to the app's program (via the pipeline's pinned
    ``program``) and scores one chunk; per-app delta bases keep state
    shipping incremental, exactly as :class:`PipelineShardWorker` does
    for homogeneous shards.
    """

    def __init__(self, pipelines: dict[int, TaurusPipeline]):
        self.pipelines = pipelines
        self._bases: dict[int, dict] = {}
        self._marks: dict[int, dict] | None = None

    def handle(self, kind: str, payload):
        if kind == "app_chunk":
            app_index, columns, want_delta = payload
            pipe = self.pipelines[app_index]
            if want_delta and app_index not in self._bases:
                self._bases[app_index] = pipe.state_snapshot()
            result = pipe.process_trace_batch(
                columns, chunk_size=max(columns.n, 1)
            )
            delta = (
                pipe.state_delta(self._bases[app_index])
                if want_delta
                else None
            )
            return app_index, result, delta
        if kind == "restore":
            for app_index, snapshot in payload.items():
                self.pipelines[app_index].restore_state(snapshot)
            self._bases.clear()
            return True
        if kind == "mark":
            self._marks = {
                a: pipe.state_snapshot() for a, pipe in self.pipelines.items()
            }
            return True
        if kind == "rewind":
            if self._marks is None:
                raise RuntimeError("rewind without a mark")
            for app_index, snapshot in self._marks.items():
                self.pipelines[app_index].restore_state(snapshot)
            self._bases.clear()
            return True
        if kind == "snapshot":
            return {
                a: pipe.state_snapshot() for a, pipe in self.pipelines.items()
            }
        if kind == "ping":
            return "pong"
        raise ValueError(f"unknown request kind {kind!r}")


# ----------------------------------------------------------------------
# Worker slots (one per shard; fork- or thread-backed)
# ----------------------------------------------------------------------
class _ForkSlot:
    """A :class:`ForkWorker` plus its dedicated writer thread.

    The writer pumps request streams into the pipe so the dispatching
    thread never blocks on a full pipe — without it, a parent stuck in
    ``write`` (big chunk) and a child stuck in ``write`` (big response)
    would deadlock.  Responses are read by the pool's collectors.
    """

    def __init__(
        self,
        context,
        extra_close_fds: Sequence[int],
        *,
        heartbeat_interval: float | None = None,
        index: int | None = None,
    ):
        self.context = context
        self.worker = ForkWorker(
            context,
            extra_close_fds=extra_close_fds,
            heartbeat_interval=heartbeat_interval,
            index=index,
        )
        self._requests: queue.Queue = queue.Queue(maxsize=_SLOT_QUEUE_DEPTH)
        self._closing = False
        self._writer = threading.Thread(
            target=self._pump, name=f"pool-writer-{self.worker.pid}",
            daemon=True,
        )
        self._writer.start()

    @property
    def pid(self) -> int | None:
        return self.worker.pid

    @property
    def alive(self) -> bool:
        return self.worker.alive

    def _pump(self) -> None:
        while True:
            try:
                item = self._requests.get(timeout=0.5)
            except queue.Empty:
                if self._closing:
                    return  # sentinel lost to a full queue; exit anyway
                continue
            if item is _SHUTDOWN:
                return
            stream = item
            try:
                for kind, payload in stream:
                    if self._closing:
                        break
                    self.worker.send(kind, payload)
            except WorkerCrash:
                pass  # the collector sees the EOF and reports it
            except BaseException as exc:
                # The stream's iterator raised, or a payload would not
                # pickle.  A collector is (or will be) blocked on the
                # response pipe, so the failure must travel *through the
                # worker*: echo it back as an abort response.  Nothing
                # was sent after the error, so the conversation stays in
                # sync and the worker stays usable.
                try:
                    self.worker.send(
                        ERROR_REQUEST, f"{type(exc).__name__}: {exc}"
                    )
                except WorkerCrash:
                    pass
            finally:
                close = getattr(stream, "close", None)
                if close is not None:
                    try:
                        close()
                    except Exception:
                        pass

    def submit(self, stream: Iterable[tuple[str, object]]) -> None:
        """Queue a request stream for the writer (returns immediately)."""
        _bounded_put(self._requests, stream, give_up=lambda: self._closing)

    def recv(self, hang_timeout: float | None = None):
        return self.worker.recv(hang_timeout)

    def close(self, timeout: float) -> None:
        # One end-to-end budget across every join/reap stage — a slot
        # with a wedged writer AND a stuck child must not spend the full
        # timeout once per stage.
        deadline = time.monotonic() + timeout
        self._closing = True  # noqa: rt-racy-field - monotonic shutdown flag; the pump thread observes it at the next frame boundary
        _bounded_put(
            self._requests, _SHUTDOWN,
            give_up=lambda: time.monotonic() >= deadline,
        )
        self._writer.join(max(0.0, deadline - time.monotonic()))
        if self._writer.is_alive():
            # Writer is wedged in a pipe write (child mid-chunk, buffer
            # full).  Killing the child EPIPEs the write and frees it.
            self.worker.reap(0.0)
            self._writer.join(max(0.0, deadline - time.monotonic()))
        self.worker.close(max(0.0, deadline - time.monotonic()))


class _ThreadSlot:
    """A persistent worker thread operating on the parent's own context.

    The in-process twin of :class:`_ForkSlot`: same submit/recv surface,
    no pickling, no state transport — the context's mutations land
    directly in the parent's pipelines.
    """

    pid = None

    def __init__(self, context, index: int):
        self.context = context
        self._requests: queue.Queue = queue.Queue(maxsize=_SLOT_QUEUE_DEPTH)
        self._responses: queue.Queue = queue.Queue(maxsize=_SLOT_QUEUE_DEPTH)
        self._closing = False
        self._worker = threading.Thread(
            target=self._run, name=f"pool-thread-{index}", daemon=True
        )
        self._worker.start()

    @property
    def alive(self) -> bool:
        return self._worker.is_alive()

    def _run(self) -> None:
        while True:
            try:
                item = self._requests.get(timeout=0.5)
            except queue.Empty:
                if self._closing:
                    return  # sentinel lost to a full queue; exit anyway
                continue
            if item is _SHUTDOWN:
                return
            try:
                for kind, payload in item:
                    if self._closing:
                        # A collector may be waiting on the undelivered
                        # remainder of this stream; wake it with an abort
                        # (the fork path's EOF → WorkerCrash equivalent).
                        self._post(("abort", "pool closed"))
                        break
                    try:
                        self._post(
                            (True, self.context.handle(kind, payload))
                        )
                    except BaseException as exc:
                        self._post(
                            (False, f"{type(exc).__name__}: {exc}")
                        )
            except BaseException as exc:
                # The stream's iterator raised: surface it as an abort so
                # the collector unblocks, and keep the slot serving.
                self._post(
                    ("abort", f"{type(exc).__name__}: {exc}")
                )

    def _post(self, item) -> None:
        # Response consumers ride the bounded ack window, so the queue
        # only fills when the collector abandoned the run — in which case
        # close() is the only way out, and dropping is correct.
        _bounded_put(self._responses, item, give_up=lambda: self._closing)

    def submit(self, stream: Iterable[tuple[str, object]]) -> None:
        _bounded_put(self._requests, stream, give_up=lambda: self._closing)

    def recv(self, hang_timeout: float | None = None):
        # Threads cannot be SIGKILLed, so ``hang_timeout`` is accepted
        # for interface parity but a stuck handler can only be unblocked
        # by close() (which aborts the stream in-band).  The get itself
        # polls in bounded slices rather than parking forever.
        while True:
            try:
                status, payload = self._responses.get(timeout=0.5)
                break
            except queue.Empty:
                continue
        if status == "abort":
            raise WorkerDispatchError(f"dispatch failed: {payload}")
        if not status:
            raise RuntimeError(f"pool worker failed: {payload}")
        return payload

    def close(self, timeout: float) -> None:
        deadline = time.monotonic() + timeout
        self._closing = True  # noqa: rt-racy-field - monotonic shutdown flag; the run thread observes it at the next queue poll
        _bounded_put(
            self._requests, _SHUTDOWN,
            give_up=lambda: time.monotonic() >= deadline,
        )
        self._worker.join(max(0.0, deadline - time.monotonic()))


# ----------------------------------------------------------------------
# Crash-transparent dispatch (one supervisor per shard)
# ----------------------------------------------------------------------
class _ShardRun:
    """Supervisor state for one worker's stream during a recovering run.

    ``pending`` is the single source of truth for sent-but-unacked
    chunks — bounded by the pool window, so a crash can only ever force
    a window's worth of replay.  ``results`` is indexed by chunk ordinal
    so replayed chunks land back in their original slot.
    """

    def __init__(self, pool: "ShardPool", index: int, source, count: int):
        self.pool = pool
        self.index = index
        self.source = source  # shared prefetch iterator, owned by the run
        self.count = count
        self.results: list = [None] * count
        self.pending: deque = deque()  # (ordinal, kind, payload)
        self.cv = threading.Condition()
        self.next_ordinal = 0
        self.collected = 0
        self.error: BaseException | None = None

    def wrap(self, ordinal: int, kind: str, payload):
        """Attach an injected fault to this dispatch, if one is scheduled."""
        faults = self.pool.faults
        if faults is not None:
            event = faults.take(self.index, ordinal)
            if event is not None:
                return (FAULT_REQUEST, (event.wire(), (kind, payload)))
        return (kind, payload)

    def ack(self) -> tuple[int, str, object]:
        """Pop the pending head (the chunk this response answers)."""
        with self.cv:
            entry = self.pending.popleft()
            self.cv.notify_all()
        return entry


class _WindowStream:
    """One dispatch attempt for a shard: replay first, then windowed sends.

    Submitted to a :class:`_ForkSlot`'s writer thread.  Re-sends the
    chunks the previous attempt had sent but not acked (already in
    ``run.pending``), then pulls fresh chunks from the shared source,
    gated so at most ``window`` chunks are ever in flight.  The
    supervisor marks the attempt ``dead`` on a crash; a dead attempt
    stops yielding promptly, parking any already-pulled chunk in
    ``pending`` for the next attempt to replay.  Exactly one attempt
    pulls from the source at a time — the supervisor retires the old
    slot (joining its writer) before submitting a new attempt.
    """

    def __init__(self, run: _ShardRun):
        self.run = run
        with run.cv:
            self._replay = list(run.pending)
        self.dead = False

    def __iter__(self) -> "_WindowStream":
        return self

    def __next__(self) -> tuple[str, object]:
        run = self.run
        if self.dead:
            raise StopIteration
        if self._replay:
            ordinal, kind, payload = self._replay.pop(0)
            return run.wrap(ordinal, kind, payload)
        with run.cv:
            while len(run.pending) >= run.pool.window and not self.dead:
                run.cv.wait(0.05)
        if self.dead:
            raise StopIteration
        kind, payload = next(run.source)  # StopIteration ends the attempt
        with run.cv:
            ordinal = run.next_ordinal
            run.next_ordinal += 1
            # Append BEFORE the writer sends: once the bytes are on the
            # pipe the ack can race back, and it pops the pending head.
            run.pending.append((ordinal, kind, payload))
        if self.dead:
            # A crash raced the pull: leave the chunk parked in pending
            # (the next attempt replays it) and stop without sending.
            raise StopIteration
        return run.wrap(ordinal, kind, payload)

    def close(self) -> None:
        """No-op: the run owns the source; attempts must not close it."""


# ----------------------------------------------------------------------
# The pool
# ----------------------------------------------------------------------
class ShardPool:
    """``N`` persistent shard workers behind a chunk-dispatch protocol.

    Parameters
    ----------
    contexts:
        One worker context per shard (:class:`PipelineShardWorker`,
        :class:`LaneWorker`, or anything exposing
        ``handle(kind, payload)``).  Fork workers inherit their context
        copy-on-write at spawn; thread workers share it with the parent.
    mode:
        ``auto`` (fork where available) | ``fork`` | ``thread``.
    window:
        Staging depth of the per-worker dispatch stream (2 = classic
        double buffering: chunk ``k+1`` ships while ``k`` scores).  Also
        bounds how many sent-but-unacked chunks a crash can force the
        pool to replay.
    close_timeout:
        Per-worker bound on graceful shutdown before SIGKILL.
    heartbeat_interval:
        Cadence of worker-side heartbeat frames (fork mode).  ``None``
        disables heartbeats — then only the coarser no-frames watchdog
        rule can catch a hang.
    hang_timeout:
        Watchdog deadline: a single request in flight longer than this
        (per a heartbeat), or a response pipe silent for this long, gets
        the worker SIGKILLed and recovered like a crash.  Individual
        chunks must score well inside this bound.  ``None`` disables the
        watchdog.
    max_chunk_retries:
        Crashes attributed to one chunk before it is declared a
        :class:`~repro.runtime.health.PoisonChunk`.
    max_worker_crashes:
        Crashes of one slot within a single run before the pool stops
        re-forking and degrades that shard to in-parent scoring.
    retry_backoff:
        Base of the exponential pause before re-forking a replacement
        (doubles per consecutive crash, capped at 1 s).
    faults:
        Optional :class:`~repro.runtime.faults.FaultPlan` consulted at
        every chunk dispatch (fork mode only) — deterministic failure
        injection for tests.
    """

    def __init__(
        self,
        contexts: Sequence,
        mode: str = "auto",
        window: int = 2,
        close_timeout: float = 5.0,
        *,
        heartbeat_interval: float | None = 0.2,
        hang_timeout: float | None = 30.0,
        max_chunk_retries: int = 3,
        max_worker_crashes: int = 5,
        retry_backoff: float = 0.05,
        faults: FaultPlan | None = None,
    ):
        if not contexts:
            raise ValueError("a pool needs at least one worker context")
        if window <= 0:
            raise ValueError("window must be positive")
        self.mode = resolve_pool_mode(mode)
        if faults is not None and self.mode != "fork":
            raise ValueError(
                "fault injection requires fork mode: thread workers share "
                "the parent process and cannot be killed or torn"
            )
        self.window = window
        self.close_timeout = close_timeout
        self.heartbeat_interval = heartbeat_interval
        self.hang_timeout = hang_timeout
        self.max_chunk_retries = max_chunk_retries
        self.max_worker_crashes = max_worker_crashes
        self.retry_backoff = retry_backoff
        self.faults = faults
        self.health = PoolHealth.for_pool(len(contexts))
        self.contexts = list(contexts)
        self._closed = False
        self._lock = threading.Lock()
        self._active_streams: list = []
        # Spawn sequentially into the live slot list so every child can
        # close its inherited copies of the earlier siblings' pipe fds —
        # otherwise a sibling's dup of a request-write end would keep
        # that worker from ever seeing EOF at close().
        self._slots: list = []
        for i in range(len(self.contexts)):
            self._slots.append(self._spawn(i))

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    @property
    def shards(self) -> int:
        return len(self.contexts)

    @property
    def transport(self) -> bool:
        """True when worker state must ship back explicitly (fork mode)."""
        return self.mode == "fork"

    @property
    def worker_pids(self) -> list[int | None]:
        return [slot.pid for slot in self._slots]

    def alive(self) -> list[bool]:
        return [slot.alive for slot in self._slots]

    def _spawn(self, index: int):
        if self.mode == "thread":
            return _ThreadSlot(self.contexts[index], index)
        sibling_fds: list[int] = []
        for slot in self._slots:
            if isinstance(slot, _ForkSlot) and slot.alive:
                sibling_fds.extend(slot.worker.parent_fds)
        return _ForkSlot(
            self.contexts[index],
            extra_close_fds=sibling_fds,
            heartbeat_interval=(
                self.heartbeat_interval if self.mode == "fork" else None
            ),
            index=index,
        )

    def restart(self, index: int) -> None:
        """Replace worker ``index`` with a fresh spawn from the parent's
        current context (fork mode re-inherits the parent's pipeline
        state, so a replaced worker resumes consistent with the parent).
        A closed pool only reaps — no fresh worker to leak."""
        self._slots[index].close(self.close_timeout)
        if not self._closed:  # noqa: rt-racy-field - monotonic bool; a supervisor reading stale False takes one extra recovery lap, harmlessly
            self._slots[index] = self._spawn(index)  # noqa: rt-racy-field - per-index slot replacement; list cell assignment is atomic under the GIL and each index is owned by its supervisor during recovery
            self.health.worker(index).restarts += 1  # noqa: rt-racy-field - advisory restart counter; per-index single writer during recovery

    def close(self) -> None:
        """Deterministic shutdown, safe under an abandoned mid-trace run.

        Stops staging (closes live prefetch streams so writers unpark),
        EOFs every request pipe, and reaps each child with a bounded
        SIGKILL fallback — no GC reliance, no unbounded joins.
        Idempotent.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if sys.is_finalizing():
            # Interpreter shutdown froze the daemon writer threads, which
            # may hold pipe-buffer locks — joining or closing their
            # streams would deadlock.  OS-level teardown only.
            for slot in self._slots:
                if slot.pid is not None:
                    try:
                        os.kill(slot.pid, signal.SIGKILL)
                        os.waitpid(slot.pid, os.WNOHANG)
                    except (OSError, ChildProcessError):
                        pass
            return
        with self._lock:
            streams, self._active_streams = self._active_streams, []
        for stream in streams:
            try:
                stream.close()
            except Exception:
                pass
        for slot in self._slots:
            slot.close(self.close_timeout)

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("pool is closed")

    def submit(self, index: int, kind: str, payload=None) -> None:
        """Queue one request for worker ``index`` (non-blocking)."""
        self._check_open()
        self._slots[index].submit([(kind, payload)])

    def collect(self, index: int):
        """The next response from worker ``index`` (blocking, in order).

        Bounded by the pool's ``hang_timeout``: a worker that dies or
        stalls mid-request surfaces as :class:`WorkerCrash` instead of
        parking the caller on the pipe forever.
        """
        return self._slots[index].recv(self.hang_timeout)

    def broadcast(self, kind: str, payloads=None) -> list:
        """One request per worker; returns the per-worker responses.

        ``payloads`` is either one payload per worker or a single shared
        payload (including None).  Failures follow the non-recovering
        contract: every healthy worker still drains, crashed workers are
        replaced for the next run, and one typed
        :class:`~repro.runtime.health.PoolError` reports the lot.
        """
        self._check_open()
        if isinstance(payloads, (list, tuple)) and len(payloads) == self.shards:
            per_worker = list(payloads)
        else:
            per_worker = [payloads] * self.shards
        for index, payload in enumerate(per_worker):
            self.submit(index, kind, payload)
        results, errors = self._drain_all(
            [(index, 1) for index in range(self.shards)]
        )
        self._heal_and_raise(errors)
        return [results[index][0] for index in range(self.shards)]

    def _note_crash(self, index: int, exc: WorkerCrash) -> None:
        """Record a worker death on the health surface."""
        worker_health = self.health.worker(index)
        if exc.hung:
            worker_health.hangs += 1  # noqa: rt-racy-field - advisory counter, one supervisor writer per index; healthy() reads are monotonic
        else:
            worker_health.crashes += 1  # noqa: rt-racy-field - advisory counter, one supervisor writer per index; healthy() reads are monotonic
        worker_health.last_error = str(exc)  # noqa: rt-racy-field - diagnostic string, one supervisor writer per index; readers tolerate any published value

    def _drain_all(
        self,
        live: Sequence[tuple[int, int]],
        on_result: Callable[[int, int, object], None] | None = None,
    ) -> tuple[dict[int, list], dict[int, BaseException]]:
        """Collect ``count`` responses per live worker, concurrently.

        Every worker is drained to its expected count even when another
        fails, so the conversation never desyncs: an in-band handler
        failure records the error but keeps draining; only a dead worker
        (whose pipe has nothing left to drain) aborts its collector.
        """
        results: dict[int, list] = {index: [] for index, __ in live}
        errors: dict[int, BaseException] = {}

        def drain(index: int, count: int) -> None:
            slot = self._slots[index]
            for ordinal in range(count):
                try:
                    response = slot.recv(self.hang_timeout)
                except WorkerCrash as exc:
                    # Nothing more will arrive from this worker: the
                    # child died (or the watchdog killed it).
                    self._note_crash(index, exc)
                    errors[index] = exc  # noqa: rt-racy-field - per-index disjoint keys; the parent reads only after joining every collector
                    return
                except WorkerDispatchError as exc:
                    # The dispatch stream stopped short; the worker is
                    # healthy but this run cannot complete.
                    errors[index] = exc
                    return
                except BaseException as exc:
                    errors.setdefault(index, exc)
                    continue
                results[index].append(response)
                if on_result is not None:
                    try:
                        on_result(index, ordinal, response)
                    except BaseException as exc:
                        errors.setdefault(index, exc)

        collectors = [
            threading.Thread(
                target=drain, args=(index, count), name=f"pool-collect-{index}"
            )
            for index, count in live
        ]
        for thread in collectors:
            thread.start()
        for thread in collectors:
            # Bounded join slices: each collector is guaranteed to finish
            # (recv has a deadline in fork mode, close() aborts thread
            # slots in-band), but no single join call parks unbounded.
            while thread.is_alive():
                thread.join(1.0)
        return results, errors

    # ------------------------------------------------------------------
    # State consistency (shared by every pool=True surface)
    # ------------------------------------------------------------------
    def rewind(self) -> None:
        """Rewind parent contexts and workers to their pristine marks.

        Fork workers rewind their own inherited snapshots; this process's
        contexts rewind locally via the same handler, so nothing but the
        request itself crosses the pipes.  In thread mode the broadcast
        alone covers both (contexts are shared).
        """
        if self.transport:
            for context in self.contexts:
                context.handle("rewind", None)
        self.broadcast("rewind")

    def pull_snapshots(self) -> list | None:
        """Best-effort worker snapshots for post-failure resync.

        After a failed run the workers are the truth (they may have
        executed chunks whose deltas were never applied parent-side).
        Returns None in thread mode (no transport, nothing can drift) or
        when the workers are unreachable — the caller's original error
        should still propagate either way.
        """
        if not self.transport:
            return None
        try:
            return self.broadcast("snapshot")
        except Exception:
            return None

    def _heal_and_raise(self, errors: dict[int, BaseException]) -> None:
        """Replace crashed workers, then raise one typed report.

        A lone :class:`~repro.runtime.health.PoolError` subclass (e.g. a
        :class:`~repro.runtime.health.PoisonChunk`) propagates as itself;
        anything else aggregates into a :class:`PoolError` whose
        ``worker_errors`` maps worker index to the original exception.
        """
        if not errors:
            return
        details = []
        for index in sorted(errors):
            exc = errors[index]
            if isinstance(exc, WorkerCrash):
                self.restart(index)
                details.append(f"{exc} [worker replaced]")
            else:
                details.append(str(exc))
        if len(errors) == 1:
            (only,) = errors.values()
            if isinstance(only, PoolError):
                raise only
        raise PoolError(
            "shard pool run failed: " + "; ".join(details),
            worker_errors=errors,
        )

    def map_streams(
        self,
        streams: Sequence[tuple[Iterator[tuple[str, object]], int] | None],
        *,
        on_result: Callable[[int, int, object], None] | None = None,
        degrade: Callable[[int, str, object], object] | None = None,
        recover: bool | None = None,
    ) -> list[list]:
        """Pipelined dispatch of one request stream per worker.

        ``streams[i]`` is ``(iterator of (kind, payload), expected
        response count)`` — or None/``(_, 0)`` for an idle worker.  In
        fork mode each stream is staged through :func:`prefetch` (depth =
        ``window``) and pumped by the worker's writer thread, so staging,
        shipping, and scoring overlap per worker and workers run
        concurrently.  Responses return per worker **in request order**.

        ``on_result(index, ordinal, response)`` fires for every response
        as it is acked (one caller thread per worker).  Stateful callers
        use it to apply state deltas *eagerly*, which is what lets a
        crash replacement re-fork from the parent at exactly the
        last-acked chunk.

        With ``recover`` (default in fork mode) a crashed or hung worker
        is **invisible to the caller**: the pool re-forks a replacement
        from the parent's context, replays the sent-but-unacked chunks,
        and merges bit-identical results — only
        :attr:`~ShardPool.health` shows the event.  A chunk that kills
        its worker more than ``max_chunk_retries`` times raises
        :class:`~repro.runtime.health.PoisonChunk`; past
        ``max_worker_crashes`` (or a failed re-fork) the shard degrades
        to in-parent scoring via ``degrade(index, kind, payload)`` (or
        the parent context itself when no callable is given).

        Without recovery (thread mode, or ``recover=False``) a crashed
        worker fails the run: every healthy worker still drains, the
        dead one is replaced for the next run, and one typed
        :class:`~repro.runtime.health.PoolError` reports the lot.
        """
        self._check_open()
        if len(streams) != self.shards:
            raise ValueError(
                f"got {len(streams)} streams for {self.shards} workers"
            )
        if recover is None:
            recover = self.mode == "fork"
        if recover and self.mode == "fork":
            return self._map_streams_recovering(streams, on_result, degrade)

        live: list[tuple[int, int]] = []  # (worker index, expected count)
        staged: list = []
        for index, entry in enumerate(streams):
            if entry is None:
                continue
            stream, count = entry
            if count <= 0:
                continue
            if self.mode == "fork":
                stream = prefetch(stream, depth=self.window)
                with self._lock:
                    if self._closed:
                        # close() won the race; don't leave a producer
                        # thread staging into an untracked stream.
                        stream.close()
                        raise RuntimeError("pool is closed")
                    self._active_streams.append(stream)
                staged.append(stream)
            self._slots[index].submit(stream)
            live.append((index, count))

        results, errors = self._drain_all(live, on_result)
        for stream in staged:
            stream.close()
            with self._lock:
                if stream in self._active_streams:
                    self._active_streams.remove(stream)
        self._heal_and_raise(errors)
        return [
            results.get(index, []) for index in range(self.shards)
        ]

    def _map_streams_recovering(
        self,
        streams: Sequence[tuple[Iterator[tuple[str, object]], int] | None],
        on_result: Callable[[int, int, object], None] | None,
        degrade: Callable[[int, str, object], object] | None,
    ) -> list[list]:
        """The fork-mode dispatch path with per-shard crash recovery."""
        runs: list[_ShardRun] = []
        staged: list = []
        for index, entry in enumerate(streams):
            if entry is None:
                continue
            stream, count = entry
            if count <= 0:
                continue
            source = prefetch(stream, depth=self.window)
            with self._lock:
                if self._closed:
                    source.close()
                    for other in staged:
                        other.close()
                    raise RuntimeError("pool is closed")
                self._active_streams.append(source)
            staged.append(source)
            runs.append(_ShardRun(self, index, source, count))

        supervisors = [
            threading.Thread(
                target=self._supervise,
                args=(run, on_result, degrade),
                name=f"pool-supervise-{run.index}",
            )
            for run in runs
        ]
        for thread in supervisors:
            thread.start()
        for thread in supervisors:
            # Bounded slices; supervisors always terminate (recv has the
            # watchdog deadline, degraded mode runs in-process).
            while thread.is_alive():
                thread.join(1.0)
        for source in staged:
            source.close()
            with self._lock:
                if source in self._active_streams:
                    self._active_streams.remove(source)
        errors = {
            run.index: run.error for run in runs if run.error is not None
        }
        self._heal_and_raise(errors)
        out: list[list] = [[] for __ in range(self.shards)]
        for run in runs:
            out[run.index] = run.results
        return out

    def _supervise(
        self,
        run: _ShardRun,
        on_result: Callable[[int, int, object], None] | None,
        degrade: Callable[[int, str, object], object] | None,
    ) -> None:
        """Drain one shard's responses, recovering from worker deaths.

        Each response acks the pending head (responses arrive in request
        order).  On a crash: blame the pending head (the chunk the
        worker was holding), re-fork a replacement from the parent's
        last-acked state, replay the window, and continue — escalating
        to :class:`PoisonChunk` or degraded in-parent scoring when the
        crash budget runs out.
        """
        index = run.index
        crashes_this_run = 0
        retries: dict[int, int] = {}
        attempt = _WindowStream(run)
        self._slots[index].submit(attempt)
        try:
            while run.collected < run.count:
                try:
                    response = self._slots[index].recv(self.hang_timeout)
                except WorkerCrash as exc:
                    attempt.dead = True  # noqa: rt-racy-field - deliberately unlatched kill flag; worst case one extra chunk parks in pending for replay
                    with run.cv:
                        run.cv.notify_all()
                    exc.last_acked = (
                        run.collected - 1 if run.collected else None
                    )
                    self._note_crash(index, exc)
                    if self._closed:
                        run.error = exc
                        return
                    crashes_this_run += 1
                    with run.cv:
                        head = (
                            run.pending[0][0]
                            if run.pending
                            else run.next_ordinal
                        )
                    retries[head] = retries.get(head, 0) + 1
                    if retries[head] > self.max_chunk_retries:
                        run.error = PoisonChunk(index, head, retries[head])
                        try:
                            self.restart(index)  # keep the pool usable
                        except OSError:
                            pass
                        return
                    if crashes_this_run > self.max_worker_crashes:
                        self._degrade_shard(run, attempt, degrade, on_result)
                        return
                    time.sleep(min(
                        1.0,
                        self.retry_backoff * (2 ** (crashes_this_run - 1)),
                    ))
                    try:
                        self.restart(index)
                    except OSError as fork_exc:
                        self.health.worker(index).last_error = (
                            f"respawn failed: {fork_exc}"
                        )
                        self._degrade_shard(run, attempt, degrade, on_result)
                        return
                    with run.cv:
                        replay = len(run.pending)
                    self.health.worker(index).replayed_chunks += replay
                    attempt = _WindowStream(run)
                    self._slots[index].submit(attempt)
                    continue
                except WorkerDispatchError as exc:
                    # The caller's stream raised mid-dispatch.  The worker
                    # is healthy and in sync (every sent chunk was acked
                    # before the echoed abort); the run just can't finish.
                    run.error = exc
                    return
                except RuntimeError as exc:
                    # In-band handler failure: the conversation is still
                    # in sync, so this *is* the ack for the pending head.
                    # Record the first error and keep draining.
                    run.ack()
                    run.collected += 1
                    if run.error is None:
                        run.error = exc
                    continue
                ordinal, __, __ = run.ack()
                run.results[ordinal] = response
                run.collected += 1
                if on_result is not None:
                    try:
                        on_result(index, ordinal, response)
                    except BaseException as exc:
                        if run.error is None:
                            run.error = exc
        except BaseException as exc:  # never strand map_streams' join
            run.error = exc
        finally:
            attempt.dead = True
            with run.cv:
                run.cv.notify_all()

    def _degrade_shard(
        self,
        run: _ShardRun,
        attempt: _WindowStream,
        degrade: Callable[[int, str, object], object] | None,
        on_result: Callable[[int, int, object], None] | None,
    ) -> None:
        """Score the shard's remaining chunks in the parent process.

        Last-resort path when replacements keep dying or fork itself
        fails.  The parent's context sits at the last-acked chunk (the
        eager delta application keeps it there), so executing the
        pending window plus the rest of the stream inline yields exactly
        the results a healthy worker would have produced — the shard
        just loses its parallelism, counted per chunk on the health
        surface.
        """
        index = run.index
        attempt.dead = True
        with run.cv:
            run.cv.notify_all()
        # Retire the dead slot first: close() joins its writer thread,
        # so nothing else is pulling from the shared source below.
        self._slots[index].close(self.close_timeout)
        worker_health = self.health.worker(index)

        def execute(ordinal: int, kind: str, payload) -> None:
            if degrade is not None:
                response = degrade(index, kind, payload)
            else:
                # Without a caller-provided fallback the parent context
                # executes the request directly — exact for stateless
                # kinds (e.g. "score"); stateful callers pass `degrade`
                # so deltas aren't double-applied.
                response = self.contexts[index].handle(kind, payload)
            run.results[ordinal] = response
            run.collected += 1
            worker_health.degraded_chunks += 1  # noqa: rt-racy-field - advisory counter; degraded mode runs single-threaded for its shard
            if on_result is not None:
                on_result(index, ordinal, response)

        try:
            with run.cv:
                backlog = list(run.pending)
                run.pending.clear()
            for ordinal, kind, payload in backlog:
                execute(ordinal, kind, payload)
            while run.collected < run.count:
                if self._closed:
                    run.error = PoolError("pool closed during degraded run")
                    return
                try:
                    kind, payload = next(run.source)
                except StopIteration:
                    run.error = PoolError(
                        f"stream for worker {index} ended after "
                        f"{run.collected} of {run.count} responses"
                    )
                    return
                ordinal = run.next_ordinal
                run.next_ordinal += 1  # noqa: rt-racy-field - degraded mode owns the run exclusively; the windowed writer was joined before entry
                execute(ordinal, kind, payload)
        except BaseException as exc:
            run.error = exc
        finally:
            # Leave the pool usable for the next run if we can.
            if not self._closed:
                try:
                    self._slots[index] = self._spawn(index)
                    worker_health.restarts += 1
                except OSError:
                    pass
