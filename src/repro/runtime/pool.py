"""Persistent shard worker pools with pipelined chunk dispatch.

The sharded runtime's ``fork`` executor pays a full fork-and-teardown per
``run()`` call — fine at trace scale, but it swamps small/interactive
traces and rules out a long-lived serving substrate.  :class:`ShardPool`
is that substrate: ``N`` **pre-forked** (or thread-backed) workers, each
holding a long-lived pipeline (or fabric lane) inherited copy-on-write at
spawn time, served over a framed request/response pipe protocol
(:class:`~repro.runtime.executors.ForkWorker`).

Instead of one monolithic task per run, a run is dispatched as
**pipelined chunks**: each worker has a dedicated writer thread pumping
requests from a :func:`~repro.runtime.overlap.prefetch`-staged stream, so
chunk ``k+1`` is being sliced *and shipped down the pipe* while the
worker scores chunk ``k`` — the double-buffering seam extended across the
process boundary.  Responses stream back per chunk and carry incremental
state deltas (:meth:`~repro.pisa.TaurusPipeline.state_delta`), so the
parent's pipelines track the workers chunk by chunk and per-message cost
stays bounded by the chunk itself, not the register file.

Lifecycle: the pool is a context manager; ``close()`` is deterministic
(EOF-then-reap with a bounded SIGKILL fallback, so an abandoned mid-trace
run cannot hang shutdown); a crashed worker is detected via the framed
protocol's EOF, reported with its exit status, and **replaced** by a
fresh fork from the parent's current state.
"""

from __future__ import annotations

import os
import queue
import signal
import sys
import threading
from typing import Iterable, Iterator, Sequence

from ..pisa.pipeline import TaurusPipeline
from .executors import (
    ERROR_REQUEST,
    ForkWorker,
    WorkerCrash,
    WorkerDispatchError,
)
from .overlap import prefetch

__all__ = [
    "POOL_MODES",
    "ShardPool",
    "PipelineShardWorker",
    "LaneWorker",
    "pool_mode_for_executor",
    "resolve_pool_mode",
]

#: Accepted values for the ``mode`` knob.
POOL_MODES = ("auto", "fork", "thread")

#: Sentinel asking a slot's writer/worker thread to exit.
_SHUTDOWN = object()


def resolve_pool_mode(mode: str) -> str:
    """Map a pool-mode request to the concrete strategy for this host."""
    if mode not in POOL_MODES:
        raise ValueError(f"unknown pool mode {mode!r}; pick one of {POOL_MODES}")
    if mode == "thread" or not hasattr(os, "fork"):
        return "thread"
    return "fork"


def pool_mode_for_executor(executor: str) -> str:
    """The pool mode a runtime ``executor`` knob implies.

    ``fork`` stays cross-process, ``thread``/``serial`` stay in-process,
    and anything else (``auto``) resolves per host — the one rule shared
    by every surface that grows a ``pool=True`` path.
    """
    if executor == "fork":
        return "fork"
    if executor in ("thread", "serial"):
        return "thread"
    return "auto"


# ----------------------------------------------------------------------
# Worker contexts (what lives inside each worker, across runs)
# ----------------------------------------------------------------------
class PipelineShardWorker:
    """One shard's long-lived pipeline plus its delta-tracking base.

    The ``handle()`` side of the pool protocol for the sharded runtime:

    * ``("chunk", (columns, want_delta))`` — one pre-sorted chunk through
      :meth:`~repro.pisa.TaurusPipeline.process_trace_batch`; returns
      ``(result, delta-or-None)``.
    * ``("score", features)`` — a read-only pass through the block's
      graph interpreter (no issue-clock accounting), the pool twin of
      ``TaurusDataPlane._score_chunks``.
    * ``("restore", snapshot)`` / ``("snapshot", None)`` — full state
      transport for arbitrary reset and verification;
    * ``("mark", None)`` / ``("rewind", None)`` — zero-payload per-run
      reset: ``mark`` pins the current state *inside* the worker and
      ``rewind`` restores it, so a pool owner wanting fresh-run
      semantics doesn't ship the register file down the pipe every run.
      Marks set on the context **before** spawning are inherited by the
      forked workers (and by crash replacements, which re-fork from the
      parent's context).
    """

    def __init__(self, pipeline: TaurusPipeline):
        self.pipeline = pipeline
        self._base: dict | None = None
        self._mark: dict | None = None

    def handle(self, kind: str, payload):
        if kind == "chunk":
            columns, want_delta = payload
            if want_delta and self._base is None:
                self._base = self.pipeline.state_snapshot()
            result = self.pipeline.process_trace_batch(
                columns, chunk_size=max(columns.n, 1)
            )
            delta = (
                self.pipeline.state_delta(self._base) if want_delta else None
            )
            return result, delta
        if kind == "score":
            return self.pipeline.block.graph.execute_batch(payload)[:, 0]
        if kind == "restore":
            self.pipeline.restore_state(payload)
            self._base = None
            return True
        if kind == "mark":
            self._mark = self.pipeline.state_snapshot()
            return True
        if kind == "rewind":
            if self._mark is None:
                raise RuntimeError("rewind without a mark")
            self.pipeline.restore_state(self._mark)
            self._base = None
            return True
        if kind == "snapshot":
            return self.pipeline.state_snapshot()
        if kind == "ping":
            return "pong"
        raise ValueError(f"unknown request kind {kind!r}")


class LaneWorker:
    """One fabric lane (shared block + per-app pipelines) behind the pool.

    ``("app_chunk", (app_index, columns, want_delta))`` steers the lane's
    shared block to the app's program (via the pipeline's pinned
    ``program``) and scores one chunk; per-app delta bases keep state
    shipping incremental, exactly as :class:`PipelineShardWorker` does
    for homogeneous shards.
    """

    def __init__(self, pipelines: dict[int, TaurusPipeline]):
        self.pipelines = pipelines
        self._bases: dict[int, dict] = {}
        self._marks: dict[int, dict] | None = None

    def handle(self, kind: str, payload):
        if kind == "app_chunk":
            app_index, columns, want_delta = payload
            pipe = self.pipelines[app_index]
            if want_delta and app_index not in self._bases:
                self._bases[app_index] = pipe.state_snapshot()
            result = pipe.process_trace_batch(
                columns, chunk_size=max(columns.n, 1)
            )
            delta = (
                pipe.state_delta(self._bases[app_index])
                if want_delta
                else None
            )
            return app_index, result, delta
        if kind == "restore":
            for app_index, snapshot in payload.items():
                self.pipelines[app_index].restore_state(snapshot)
            self._bases.clear()
            return True
        if kind == "mark":
            self._marks = {
                a: pipe.state_snapshot() for a, pipe in self.pipelines.items()
            }
            return True
        if kind == "rewind":
            if self._marks is None:
                raise RuntimeError("rewind without a mark")
            for app_index, snapshot in self._marks.items():
                self.pipelines[app_index].restore_state(snapshot)
            self._bases.clear()
            return True
        if kind == "snapshot":
            return {
                a: pipe.state_snapshot() for a, pipe in self.pipelines.items()
            }
        if kind == "ping":
            return "pong"
        raise ValueError(f"unknown request kind {kind!r}")


# ----------------------------------------------------------------------
# Worker slots (one per shard; fork- or thread-backed)
# ----------------------------------------------------------------------
class _ForkSlot:
    """A :class:`ForkWorker` plus its dedicated writer thread.

    The writer pumps request streams into the pipe so the dispatching
    thread never blocks on a full pipe — without it, a parent stuck in
    ``write`` (big chunk) and a child stuck in ``write`` (big response)
    would deadlock.  Responses are read by the pool's collectors.
    """

    def __init__(self, context, extra_close_fds: Sequence[int]):
        self.context = context
        self.worker = ForkWorker(context, extra_close_fds=extra_close_fds)
        self._requests: queue.Queue = queue.Queue()
        self._closing = False
        self._writer = threading.Thread(
            target=self._pump, name=f"pool-writer-{self.worker.pid}",
            daemon=True,
        )
        self._writer.start()

    @property
    def pid(self) -> int | None:
        return self.worker.pid

    @property
    def alive(self) -> bool:
        return self.worker.alive

    def _pump(self) -> None:
        while True:
            item = self._requests.get()
            if item is _SHUTDOWN:
                return
            stream = item
            try:
                for kind, payload in stream:
                    if self._closing:
                        break
                    self.worker.send(kind, payload)
            except WorkerCrash:
                pass  # the collector sees the EOF and reports it
            except BaseException as exc:
                # The stream's iterator raised, or a payload would not
                # pickle.  A collector is (or will be) blocked on the
                # response pipe, so the failure must travel *through the
                # worker*: echo it back as an abort response.  Nothing
                # was sent after the error, so the conversation stays in
                # sync and the worker stays usable.
                try:
                    self.worker.send(
                        ERROR_REQUEST, f"{type(exc).__name__}: {exc}"
                    )
                except WorkerCrash:
                    pass
            finally:
                close = getattr(stream, "close", None)
                if close is not None:
                    try:
                        close()
                    except Exception:
                        pass

    def submit(self, stream: Iterable[tuple[str, object]]) -> None:
        """Queue a request stream for the writer (returns immediately)."""
        self._requests.put(stream)

    def recv(self):
        return self.worker.recv()

    def close(self, timeout: float) -> None:
        self._closing = True
        self._requests.put(_SHUTDOWN)
        self._writer.join(timeout)
        if self._writer.is_alive():
            # Writer is wedged in a pipe write (child mid-chunk, buffer
            # full).  Killing the child EPIPEs the write and frees it.
            self.worker.reap(0.0)
            self._writer.join(timeout)
        self.worker.close(timeout)


class _ThreadSlot:
    """A persistent worker thread operating on the parent's own context.

    The in-process twin of :class:`_ForkSlot`: same submit/recv surface,
    no pickling, no state transport — the context's mutations land
    directly in the parent's pipelines.
    """

    pid = None

    def __init__(self, context, index: int):
        self.context = context
        self._requests: queue.Queue = queue.Queue()
        self._responses: queue.Queue = queue.Queue()
        self._closing = False
        self._worker = threading.Thread(
            target=self._run, name=f"pool-thread-{index}", daemon=True
        )
        self._worker.start()

    @property
    def alive(self) -> bool:
        return self._worker.is_alive()

    def _run(self) -> None:
        while True:
            item = self._requests.get()
            if item is _SHUTDOWN:
                return
            try:
                for kind, payload in item:
                    if self._closing:
                        # A collector may be waiting on the undelivered
                        # remainder of this stream; wake it with an abort
                        # (the fork path's EOF → WorkerCrash equivalent).
                        self._responses.put(("abort", "pool closed"))
                        break
                    try:
                        self._responses.put(
                            (True, self.context.handle(kind, payload))
                        )
                    except BaseException as exc:
                        self._responses.put(
                            (False, f"{type(exc).__name__}: {exc}")
                        )
            except BaseException as exc:
                # The stream's iterator raised: surface it as an abort so
                # the collector unblocks, and keep the slot serving.
                self._responses.put(
                    ("abort", f"{type(exc).__name__}: {exc}")
                )

    def submit(self, stream: Iterable[tuple[str, object]]) -> None:
        self._requests.put(stream)

    def recv(self):
        status, payload = self._responses.get()
        if status == "abort":
            raise WorkerDispatchError(f"dispatch failed: {payload}")
        if not status:
            raise RuntimeError(f"pool worker failed: {payload}")
        return payload

    def close(self, timeout: float) -> None:
        self._closing = True
        self._requests.put(_SHUTDOWN)
        self._worker.join(timeout)


# ----------------------------------------------------------------------
# The pool
# ----------------------------------------------------------------------
class ShardPool:
    """``N`` persistent shard workers behind a chunk-dispatch protocol.

    Parameters
    ----------
    contexts:
        One worker context per shard (:class:`PipelineShardWorker`,
        :class:`LaneWorker`, or anything exposing
        ``handle(kind, payload)``).  Fork workers inherit their context
        copy-on-write at spawn; thread workers share it with the parent.
    mode:
        ``auto`` (fork where available) | ``fork`` | ``thread``.
    window:
        Staging depth of the per-worker dispatch stream (2 = classic
        double buffering: chunk ``k+1`` ships while ``k`` scores).
    close_timeout:
        Per-worker bound on graceful shutdown before SIGKILL.
    """

    def __init__(
        self,
        contexts: Sequence,
        mode: str = "auto",
        window: int = 2,
        close_timeout: float = 5.0,
    ):
        if not contexts:
            raise ValueError("a pool needs at least one worker context")
        if window <= 0:
            raise ValueError("window must be positive")
        self.mode = resolve_pool_mode(mode)
        self.window = window
        self.close_timeout = close_timeout
        self.contexts = list(contexts)
        self._closed = False
        self._lock = threading.Lock()
        self._active_streams: list = []
        # Spawn sequentially into the live slot list so every child can
        # close its inherited copies of the earlier siblings' pipe fds —
        # otherwise a sibling's dup of a request-write end would keep
        # that worker from ever seeing EOF at close().
        self._slots: list = []
        for i in range(len(self.contexts)):
            self._slots.append(self._spawn(i))

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    @property
    def shards(self) -> int:
        return len(self.contexts)

    @property
    def transport(self) -> bool:
        """True when worker state must ship back explicitly (fork mode)."""
        return self.mode == "fork"

    @property
    def worker_pids(self) -> list[int | None]:
        return [slot.pid for slot in self._slots]

    def alive(self) -> list[bool]:
        return [slot.alive for slot in self._slots]

    def _spawn(self, index: int):
        if self.mode == "thread":
            return _ThreadSlot(self.contexts[index], index)
        sibling_fds: list[int] = []
        for slot in self._slots:
            if isinstance(slot, _ForkSlot) and slot.alive:
                sibling_fds.extend(slot.worker.parent_fds)
        return _ForkSlot(self.contexts[index], extra_close_fds=sibling_fds)

    def restart(self, index: int) -> None:
        """Replace worker ``index`` with a fresh spawn from the parent's
        current context (fork mode re-inherits the parent's pipeline
        state, so a replaced worker resumes consistent with the parent).
        A closed pool only reaps — no fresh worker to leak."""
        self._slots[index].close(self.close_timeout)
        if not self._closed:
            self._slots[index] = self._spawn(index)

    def close(self) -> None:
        """Deterministic shutdown, safe under an abandoned mid-trace run.

        Stops staging (closes live prefetch streams so writers unpark),
        EOFs every request pipe, and reaps each child with a bounded
        SIGKILL fallback — no GC reliance, no unbounded joins.
        Idempotent.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if sys.is_finalizing():
            # Interpreter shutdown froze the daemon writer threads, which
            # may hold pipe-buffer locks — joining or closing their
            # streams would deadlock.  OS-level teardown only.
            for slot in self._slots:
                if slot.pid is not None:
                    try:
                        os.kill(slot.pid, signal.SIGKILL)
                        os.waitpid(slot.pid, os.WNOHANG)
                    except (OSError, ChildProcessError):
                        pass
            return
        with self._lock:
            streams, self._active_streams = self._active_streams, []
        for stream in streams:
            try:
                stream.close()
            except Exception:
                pass
        for slot in self._slots:
            slot.close(self.close_timeout)

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("pool is closed")

    def submit(self, index: int, kind: str, payload=None) -> None:
        """Queue one request for worker ``index`` (non-blocking)."""
        self._check_open()
        self._slots[index].submit([(kind, payload)])

    def collect(self, index: int):
        """The next response from worker ``index`` (blocking, in order)."""
        return self._slots[index].recv()

    def broadcast(self, kind: str, payloads=None) -> list:
        """One request per worker; returns the per-worker responses.

        ``payloads`` is either one payload per worker or a single shared
        payload (including None).  Failures follow :meth:`map_streams`'s
        contract: every healthy worker still drains, crashed workers are
        replaced, and one ``RuntimeError`` reports the lot.
        """
        self._check_open()
        if isinstance(payloads, (list, tuple)) and len(payloads) == self.shards:
            per_worker = list(payloads)
        else:
            per_worker = [payloads] * self.shards
        for index, payload in enumerate(per_worker):
            self.submit(index, kind, payload)
        results, errors = self._drain_all(
            [(index, 1) for index in range(self.shards)]
        )
        self._heal_and_raise(errors)
        return [results[index][0] for index in range(self.shards)]

    def _drain_all(
        self, live: Sequence[tuple[int, int]]
    ) -> tuple[dict[int, list], dict[int, BaseException]]:
        """Collect ``count`` responses per live worker, concurrently.

        Every worker is drained to its expected count even when another
        fails, so the conversation never desyncs: an in-band handler
        failure records the error but keeps draining; only a dead worker
        (whose pipe has nothing left to drain) aborts its collector.
        """
        results: dict[int, list] = {index: [] for index, __ in live}
        errors: dict[int, BaseException] = {}

        def drain(index: int, count: int) -> None:
            slot = self._slots[index]
            for __ in range(count):
                try:
                    results[index].append(slot.recv())
                except (WorkerCrash, WorkerDispatchError) as exc:
                    # Nothing more will arrive from this worker: the
                    # child died, or the dispatch stream stopped short.
                    errors[index] = exc
                    return
                except BaseException as exc:
                    errors.setdefault(index, exc)

        collectors = [
            threading.Thread(
                target=drain, args=(index, count), name=f"pool-collect-{index}"
            )
            for index, count in live
        ]
        for thread in collectors:
            thread.start()
        for thread in collectors:
            thread.join()
        return results, errors

    # ------------------------------------------------------------------
    # State consistency (shared by every pool=True surface)
    # ------------------------------------------------------------------
    def rewind(self) -> None:
        """Rewind parent contexts and workers to their pristine marks.

        Fork workers rewind their own inherited snapshots; this process's
        contexts rewind locally via the same handler, so nothing but the
        request itself crosses the pipes.  In thread mode the broadcast
        alone covers both (contexts are shared).
        """
        if self.transport:
            for context in self.contexts:
                context.handle("rewind", None)
        self.broadcast("rewind")

    def pull_snapshots(self) -> list | None:
        """Best-effort worker snapshots for post-failure resync.

        After a failed run the workers are the truth (they may have
        executed chunks whose deltas were never applied parent-side).
        Returns None in thread mode (no transport, nothing can drift) or
        when the workers are unreachable — the caller's original error
        should still propagate either way.
        """
        if not self.transport:
            return None
        try:
            return self.broadcast("snapshot")
        except Exception:
            return None

    def _heal_and_raise(self, errors: dict[int, BaseException]) -> None:
        """Replace crashed workers, then raise one aggregated report."""
        if not errors:
            return
        details = []
        for index in sorted(errors):
            exc = errors[index]
            if isinstance(exc, WorkerCrash):
                self.restart(index)
                details.append(f"{exc} [worker replaced]")
            else:
                details.append(str(exc))
        raise RuntimeError("shard pool run failed: " + "; ".join(details))

    def map_streams(
        self,
        streams: Sequence[tuple[Iterator[tuple[str, object]], int] | None],
    ) -> list[list]:
        """Pipelined dispatch of one request stream per worker.

        ``streams[i]`` is ``(iterator of (kind, payload), expected
        response count)`` — or None/``(_, 0)`` for an idle worker.  In
        fork mode each stream is staged through :func:`prefetch` (depth =
        ``window``) and pumped by the worker's writer thread, so staging,
        shipping, and scoring overlap per worker and workers run
        concurrently.  Responses return per worker **in request order**.

        A crashed worker fails the run: every healthy worker still
        drains, the dead one is replaced (fresh fork from the parent's
        current context), and a ``RuntimeError`` naming pid and exit
        status raises.
        """
        self._check_open()
        if len(streams) != self.shards:
            raise ValueError(
                f"got {len(streams)} streams for {self.shards} workers"
            )
        live: list[tuple[int, int]] = []  # (worker index, expected count)
        staged: list = []
        for index, entry in enumerate(streams):
            if entry is None:
                continue
            stream, count = entry
            if count <= 0:
                continue
            if self.mode == "fork":
                stream = prefetch(stream, depth=self.window)
                with self._lock:
                    if self._closed:
                        # close() won the race; don't leave a producer
                        # thread staging into an untracked stream.
                        stream.close()
                        raise RuntimeError("pool is closed")
                    self._active_streams.append(stream)
                staged.append(stream)
            self._slots[index].submit(stream)
            live.append((index, count))

        results, errors = self._drain_all(live)
        for stream in staged:
            stream.close()
            with self._lock:
                if stream in self._active_streams:
                    self._active_streams.remove(stream)
        self._heal_and_raise(errors)
        return [
            results.get(index, []) for index in range(self.shards)
        ]
