"""Double-buffered chunk streaming: prepare chunk ``k+1`` while ``k`` runs.

The batched data plane alternates two kinds of work per chunk — *staging*
(slicing/columnarizing the next block of packets, and eventually trace
generation or replay I/O) and *scoring* (the vectorized pipeline pass).
:func:`prefetch` moves the staging side onto a producer thread with a
small bounded buffer, so the consumer always finds the next chunk ready.
Ordering is preserved and semantics are unchanged — this is purely a
latency-hiding seam (ROADMAP's "async replay" direction hangs off it).
"""

from __future__ import annotations

import queue
import threading
from typing import Iterable, Iterator, TypeVar

__all__ = ["prefetch"]

T = TypeVar("T")


class _Failure:
    """Carrier that moves a producer-side exception to the consumer."""

    __slots__ = ("exc",)

    def __init__(self, exc: BaseException):
        self.exc = exc


def prefetch(items: Iterable[T], depth: int = 2) -> Iterator[T]:
    """Yield ``items`` in order, produced ``depth`` ahead on a worker thread.

    ``depth`` bounds the number of staged-but-unconsumed chunks (classic
    double buffering at the default of 2).  Exceptions raised by the
    producer re-raise at the consumer's next pull; abandoning the iterator
    early (``break`` / generator close) stops the producer promptly.
    """
    if depth <= 0:
        raise ValueError("depth must be positive")
    buffer: queue.Queue = queue.Queue(maxsize=depth)
    done = object()
    stop = threading.Event()

    def offer(item) -> bool:
        """Blocking put that gives up once the consumer walks away."""
        while not stop.is_set():
            try:
                buffer.put(item, timeout=0.1)
                return True
            except queue.Full:
                continue
        return False

    def produce() -> None:
        try:
            for item in items:
                if not offer(item):
                    return
            offer(done)
        except BaseException as exc:  # surfaced to the consumer
            offer(_Failure(exc))

    worker = threading.Thread(target=produce, name="chunk-prefetch", daemon=True)
    worker.start()
    try:
        while True:
            item = buffer.get()
            if item is done:
                break
            if isinstance(item, _Failure):
                raise item.exc
            yield item
    finally:
        stop.set()
        worker.join()
