"""Double-buffered chunk streaming: prepare chunk ``k+1`` while ``k`` runs.

The batched data plane alternates two kinds of work per chunk — *staging*
(slicing/columnarizing the next block of packets, and eventually trace
generation or replay I/O) and *scoring* (the vectorized pipeline pass).
:func:`prefetch` moves the staging side onto a producer thread with a
small bounded buffer, so the consumer always finds the next chunk ready.
Ordering is preserved and semantics are unchanged — this is purely a
latency-hiding seam (ROADMAP's "async replay" direction hangs off it).

Shutdown is deterministic: :class:`prefetch` is a real iterator object
(not a generator), so abandoning it — ``break``, a consumer-side
exception, an explicit :meth:`prefetch.close`, or a ``with`` block —
stops the producer promptly.  ``close()`` signals the stop event, drains
the buffer so a producer parked in ``put`` unblocks immediately (instead
of timing out its poll), closes a generator source, and joins the worker
with a bounded timeout.
"""

from __future__ import annotations

import queue
import threading
from typing import Iterable, Iterator, TypeVar

__all__ = ["prefetch"]

T = TypeVar("T")

#: Sentinel marking normal producer exhaustion.
_DONE = object()


class _Failure:
    """Carrier that moves a producer-side exception to the consumer."""

    __slots__ = ("exc",)

    def __init__(self, exc: BaseException):
        self.exc = exc


class prefetch(Iterator[T]):
    """Yield ``items`` in order, produced ``depth`` ahead on a worker thread.

    ``depth`` bounds the number of staged-but-unconsumed chunks (classic
    double buffering at the default of 2).  Exceptions raised by the
    producer re-raise at the consumer's next pull.

    Usable as a plain iterator, or as a context manager when the consumer
    may leave the loop early::

        with prefetch(chunks) as staged:
            for chunk in staged:
                ...

    ``close()`` is idempotent and safe to call at any point; after it the
    iterator is exhausted.
    """

    def __init__(self, items: Iterable[T], depth: int = 2,
                 join_timeout: float = 5.0):
        if depth <= 0:
            raise ValueError("depth must be positive")
        self._items = items
        self._buffer: queue.Queue = queue.Queue(maxsize=depth)
        self._stop = threading.Event()
        self._join_timeout = join_timeout
        self._finished = False
        self._worker = threading.Thread(
            target=self._produce, name="chunk-prefetch", daemon=True
        )
        self._worker.start()

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def _offer(self, item) -> bool:
        """Blocking put that gives up as soon as the consumer walks away."""
        while not self._stop.is_set():
            try:
                self._buffer.put(item, timeout=0.1)
                return True
            except queue.Full:
                continue
        return False

    def _produce(self) -> None:
        try:
            iterator = iter(self._items)
            while not self._stop.is_set():
                try:
                    item = next(iterator)
                except StopIteration:
                    self._offer(_DONE)
                    return
                if not self._offer(item):
                    return
        except BaseException as exc:  # surfaced to the consumer
            self._offer(_Failure(exc))
        finally:
            # A generator source holds staging resources; release them on
            # the producer thread rather than waiting for GC.
            close = getattr(self._items, "close", None)
            if close is not None:
                try:
                    close()
                except Exception:
                    pass

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------
    def __iter__(self) -> "prefetch[T]":
        return self

    def __next__(self) -> T:
        # Poll rather than park: a racing close() from another thread
        # sets the stop flag and *drains the buffer*, so an untimed
        # ``get()`` here would strand this consumer forever on a queue
        # nothing will ever fill again.
        while True:
            if self._finished:
                raise StopIteration
            try:
                item = self._buffer.get(timeout=0.05)
            except queue.Empty:
                if self._stop.is_set():
                    raise StopIteration from None
                continue
            if item is _DONE:
                self._shutdown()
                raise StopIteration
            if isinstance(item, _Failure):
                self._shutdown()
                raise item.exc
            return item

    @property
    def closed(self) -> bool:
        """True once close() ran (or the stream was exhausted).

        The shard pool's recovery supervisor uses this to tell "source
        drained normally" from "pool shut down underneath the run": both
        surface as ``StopIteration`` to the consumer, but only the former
        means every chunk was dispatched.
        """
        return self._finished

    def close(self) -> None:
        """Stop the producer promptly and release the worker thread.

        Safe to call at any time (including after exhaustion, repeatedly,
        or mid-stream after a consumer-side exception).  The buffer is
        drained so a producer blocked in ``put`` wakes immediately; the
        join is bounded so a source stuck inside ``next()`` cannot hang
        the caller (the daemon worker then dies with the process).
        """
        self._shutdown()

    def _shutdown(self) -> None:
        if self._finished:
            return
        self._finished = True  # noqa: rt-racy-field - idempotent-close flag; the _stop Event is the cross-thread fence
        self._stop.set()
        # Unblock a producer parked in put(): after the drain it either
        # completes one pending put into free space or times out, sees the
        # stop flag, and exits — no 0.1 s straggler, no leaked buffer.
        while True:
            try:
                self._buffer.get_nowait()
            except queue.Empty:
                break
        self._worker.join(timeout=self._join_timeout)

    # ------------------------------------------------------------------
    # Context-manager / finalization hooks
    # ------------------------------------------------------------------
    def __enter__(self) -> "prefetch[T]":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass
