"""Pool health accounting and the typed errors the recovery path raises.

Crash-transparent recovery means the caller's *results* never show a
failure — so the failure has to show up somewhere else.  That somewhere
is :class:`PoolHealth`: per-worker counters for crashes, hangs, restarts,
replayed chunks, and chunks the parent had to score in-process after the
worker could not be kept alive.  ``ShardedRuntime``, ``MultiAppFabric``,
and ``TaurusDataPlane`` surface the pool's health object so callers (and
tests) can assert that a run survived *and* see what it survived.

Two typed errors replace the old stringly aggregated ``RuntimeError``:

:class:`PoolError`
    Raised when a pooled run genuinely fails.  Carries the per-worker
    exception list (``worker_errors``) so callers can inspect which shard
    failed and why instead of parsing a semicolon-joined message.
:class:`PoisonChunk`
    Raised when one specific chunk kills every worker that touches it
    ``max_chunk_retries`` times over — the one failure recovery must not
    paper over, because retrying it forever would livelock the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["PoolError", "PoisonChunk", "PoolHealth", "WorkerHealth"]


class PoolError(RuntimeError):
    """A pooled run failed; per-worker causes are in ``worker_errors``."""

    def __init__(self, message: str, worker_errors: dict[int, Exception] | None = None):
        super().__init__(message)
        self.worker_errors: dict[int, Exception] = dict(worker_errors or {})


class PoisonChunk(PoolError):
    """One chunk repeatedly killed its worker; recovery refuses to loop."""

    def __init__(self, worker_index: int, ordinal: int, crashes: int):
        self.worker_index = int(worker_index)
        self.ordinal = int(ordinal)
        self.crashes = int(crashes)
        super().__init__(
            f"chunk {self.ordinal} killed worker {self.worker_index} "
            f"{self.crashes} times; refusing further replay"
        )


@dataclass
class WorkerHealth:
    """Failure counters for one pool slot (stable across restarts)."""

    index: int
    crashes: int = 0        # worker died (EOF / torn frame / nonzero exit)
    hangs: int = 0          # watchdog SIGKILLed a stuck worker
    restarts: int = 0       # replacement workers forked mid-run or post-run
    replayed_chunks: int = 0   # chunks re-sent to a replacement worker
    degraded_chunks: int = 0   # chunks the parent scored in-process
    last_error: str = ""

    @property
    def healthy(self) -> bool:
        return self.crashes == 0 and self.hangs == 0 and self.degraded_chunks == 0


@dataclass
class PoolHealth:
    """Aggregated failure counters for a :class:`ShardPool`.

    One :class:`WorkerHealth` per slot; counters accumulate across runs
    until :meth:`reset`.  ``degraded`` means at least one chunk was scored
    in the parent because a slot could not be kept alive — results are
    still exact, but that shard ran without parallelism.
    """

    workers: list[WorkerHealth] = field(default_factory=list)

    @classmethod
    def for_pool(cls, size: int) -> "PoolHealth":
        return cls(workers=[WorkerHealth(index=i) for i in range(size)])

    def worker(self, index: int) -> WorkerHealth:
        return self.workers[index]

    @property
    def crashes(self) -> int:
        return sum(w.crashes for w in self.workers)

    @property
    def hangs(self) -> int:
        return sum(w.hangs for w in self.workers)

    @property
    def restarts(self) -> int:
        return sum(w.restarts for w in self.workers)

    @property
    def replayed_chunks(self) -> int:
        return sum(w.replayed_chunks for w in self.workers)

    @property
    def degraded_chunks(self) -> int:
        return sum(w.degraded_chunks for w in self.workers)

    @property
    def degraded(self) -> bool:
        return self.degraded_chunks > 0

    @property
    def healthy(self) -> bool:
        return all(w.healthy for w in self.workers)

    def reset(self) -> None:
        self.workers = [WorkerHealth(index=w.index) for w in self.workers]  # noqa: rt-racy-field - reset() is a between-runs API by contract; no pool run is active when it swaps the list

    def snapshot(self) -> "PoolHealth":
        """Deep copy of the current counters (a point-in-time window mark).

        Counters on a live pool accumulate across runs; re-forking just to
        zero them would defeat the point of a warm pool.  A service that
        reports per-interval stats instead marks a window with
        ``snapshot()`` and later diffs against it with :meth:`since`.
        """
        return PoolHealth(
            workers=[
                WorkerHealth(
                    index=w.index,
                    crashes=w.crashes,
                    hangs=w.hangs,
                    restarts=w.restarts,
                    replayed_chunks=w.replayed_chunks,
                    degraded_chunks=w.degraded_chunks,
                    last_error=w.last_error,
                )
                for w in self.workers
            ]
        )

    def since(self, baseline: "PoolHealth") -> "PoolHealth":
        """Per-worker counter deltas accumulated after ``baseline``.

        ``baseline`` is a prior :meth:`snapshot` of the same pool.  Workers
        the baseline does not know about (a pool resized between marks)
        count from zero.
        """
        base = {w.index: w for w in baseline.workers}
        zero = WorkerHealth(index=-1)
        delta = []
        for w in self.workers:
            b = base.get(w.index, zero)
            delta.append(
                WorkerHealth(
                    index=w.index,
                    crashes=w.crashes - b.crashes,
                    hangs=w.hangs - b.hangs,
                    restarts=w.restarts - b.restarts,
                    replayed_chunks=w.replayed_chunks - b.replayed_chunks,
                    degraded_chunks=w.degraded_chunks - b.degraded_chunks,
                    last_error=w.last_error if w.last_error != b.last_error else "",
                )
            )
        return PoolHealth(workers=delta)

    def summary(self) -> str:
        return (
            f"crashes={self.crashes} hangs={self.hangs} restarts={self.restarts} "
            f"replayed={self.replayed_chunks} degraded={self.degraded_chunks}"
        )
