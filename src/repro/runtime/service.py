"""Always-on inference serving on the warm shard pool.

PR 5–7 built a substrate that can score traces fast and survive its own
workers dying; this module makes it *a service*.  The paper's end state is
a switch that scores every packet forever, so the missing robustness layer
is the one above the pool: staying correct and bounded when **load**
misbehaves, not just when processes do.

:class:`InferenceService` wraps a pool-backed runtime — a single-app
:class:`~repro.runtime.sharded.ShardedRuntime` or a multi-tenant
:class:`~repro.runtime.fabric.MultiAppFabric` — behind the four-gate
surface of a serving loop:

ingress
    :meth:`InferenceService.submit` — producers hand in packet chunks.
    Admission is **explicit**: every submit returns ``ACCEPTED``,
    ``DEFERRED`` (rate-limited; carries a retry-after), or ``SHED``
    (overload; dropped now) instead of ever blocking unboundedly.
stream-results
    :meth:`InferenceService.take_results` — per-client bounded result
    buffers; every accepted request's fate (completed / expired /
    evicted / failed) eventually appears exactly once.
query-stats
    :meth:`InferenceService.stats` / :meth:`InferenceService.interval_stats`
    — cumulative and per-window counters (the window deltas ride on
    :meth:`PoolHealth.snapshot`/:meth:`PoolHealth.since`, so a warm pool
    reports per-interval health without re-forking).
admin
    :meth:`InferenceService.start` / :meth:`InferenceService.drain` /
    :meth:`InferenceService.close` — lifecycle.  ``drain`` is the graceful
    bounded shutdown: stop admitting, finish in-flight work, flush
    results.

Boundedness discipline
----------------------
Every buffer in the service has a hard cap: per-client ingress queues
(``queue_depth``, with the overload policy deciding what happens at the
cap), per-client result buffers (``result_depth``, oldest dropped and
counted), and the latency reservoir (``latency_window``).  Nothing in
this module grows with offered load.

Determinism contract
--------------------
Admission is a pure function of (clock, arrival order, queue occupancy),
so a seeded arrival schedule driven against a virtual ``clock=`` replays
to the exact same decisions.  Scoring order is recorded on each completed
result (``seq``), so an oracle runtime replaying the same chunks in
``seq`` order reproduces every accepted chunk's result bit for bit — even
when a :class:`~repro.runtime.faults.FaultPlan` is killing workers
underneath, because pool recovery is itself result-transparent.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .health import PoolError, PoolHealth
from .sharded import as_trace_columns

__all__ = [
    "ACCEPTED",
    "DEFERRED",
    "SHED",
    "OVERLOAD_POLICIES",
    "Admission",
    "ClientSpec",
    "InferenceService",
    "ServiceResult",
    "ServiceStats",
    "VirtualClock",
]

ACCEPTED = "accepted"
DEFERRED = "deferred"
SHED = "shed"

#: What happens when a client's ingress queue is at ``queue_depth``:
#: ``reject-new`` sheds the incoming request; ``drop-oldest`` evicts the
#: queue head to make room (the evicted request's fate is delivered on the
#: result stream); ``degrade-to-sampling`` keeps admitting up to
#: ``2 * queue_depth`` but scores a deterministic row subsample (stride 2,
#: then 4), shedding only at the hard cap.
OVERLOAD_POLICIES = ("reject-new", "drop-oldest", "degrade-to-sampling")


class VirtualClock:
    """A manually advanced clock for deterministic replay and tests."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def __call__(self) -> float:
        return self._now

    def advance(self, dt: float) -> float:
        if dt < 0:
            raise ValueError("time cannot move backwards")
        self._now += float(dt)
        return self._now

    def advance_to(self, t: float) -> float:
        if t < self._now:
            raise ValueError("time cannot move backwards")
        self._now = float(t)
        return self._now


@dataclass(frozen=True)
class Admission:
    """The ingress gate's explicit verdict on one submit."""

    status: str               # ACCEPTED | DEFERRED | SHED
    request_id: int
    client: str
    reason: str = ""          # "rate-limited" | "queue-full" | "draining" | ""
    retry_after_s: float = 0.0   # DEFERRED only: when the bucket refills
    stride: int = 1           # >1: admitted degraded-to-sampling

    @property
    def accepted(self) -> bool:
        return self.status == ACCEPTED


@dataclass
class ClientSpec:
    """One tenant's admission contract.

    ``rate``/``burst`` parameterize a token bucket in requests per second
    (``rate=None`` disables rate limiting).  ``app`` binds the client to a
    fabric app by name (required when the service wraps a
    ``MultiAppFabric``; ignored for a single-app runtime).
    ``deadline_s`` is the default per-request decision budget; a request
    still queued past it is expired, not scored.
    """

    name: str
    app: str | None = None
    queue_depth: int = 8
    rate: float | None = None
    burst: float | None = None
    deadline_s: float | None = None
    result_depth: int | None = None   # default: 4 * queue_depth

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("clients need a name")
        if self.queue_depth <= 0:
            raise ValueError("queue_depth must be positive")
        if self.rate is not None and self.rate <= 0:
            raise ValueError("rate must be positive (or None)")
        if self.burst is not None and self.burst <= 0:
            raise ValueError("burst must be positive (or None)")
        if self.result_depth is not None and self.result_depth <= 0:
            raise ValueError("result_depth must be positive (or None)")


@dataclass(frozen=True)
class ServiceResult:
    """One accepted request's fate, delivered on the stream-results gate.

    ``status`` is ``"completed"`` (``result`` holds the per-chunk
    :class:`~repro.pisa.pipeline.TracePipelineResult`), ``"expired"``
    (deadline passed while queued; never scored), ``"evicted"``
    (drop-oldest made room for a newer request), or ``"failed"`` (the
    runtime raised; ``error`` carries the message).  ``seq`` is the global
    scoring order — replaying completed chunks by ``seq`` through a fresh
    runtime reproduces ``result`` exactly.
    """

    request_id: int
    client: str
    status: str
    result: object = None
    seq: int = -1
    enqueued_at: float = 0.0
    decided_at: float = 0.0
    time_to_decision_s: float = 0.0
    stride: int = 1
    n_packets: int = 0
    error: str = ""


_COUNTERS = (
    "submitted", "accepted", "deferred", "shed", "evicted", "completed",
    "expired", "failed", "sampled", "late", "packets_in", "packets_out",
    "results_dropped",
)


@dataclass
class ServiceStats:
    """Counter snapshot from the query-stats gate.

    ``expired`` *is* the deadline-violation count (requests never scored);
    ``late`` counts requests that completed after their deadline anyway.
    ``pool`` carries the backing pool's :class:`PoolHealth` counters for
    the same window (``None`` when the runtime is not pool-backed).
    """

    submitted: int = 0
    accepted: int = 0
    deferred: int = 0
    shed: int = 0
    evicted: int = 0
    completed: int = 0
    expired: int = 0
    failed: int = 0
    sampled: int = 0
    late: int = 0
    packets_in: int = 0
    packets_out: int = 0
    results_dropped: int = 0
    p50_decision_s: float = float("nan")
    p99_decision_s: float = float("nan")
    queue_depths: dict[str, int] = field(default_factory=dict)
    pool: PoolHealth | None = None

    @property
    def deadline_violations(self) -> int:
        return self.expired

    def summary(self) -> str:
        lat = (
            f"p50={self.p50_decision_s * 1e3:.2f}ms "
            f"p99={self.p99_decision_s * 1e3:.2f}ms"
            if self.completed
            else "p50=? p99=?"
        )
        return (
            f"accepted={self.accepted} deferred={self.deferred} "
            f"shed={self.shed} completed={self.completed} "
            f"expired={self.expired} {lat}"
        )


@dataclass
class _Pending:
    request_id: int
    client: str
    columns: object            # TraceColumns
    stride: int
    enqueued_at: float
    deadline_at: float | None


class _Bucket:
    """Token bucket; refilled lazily from the service clock."""

    def __init__(self, rate: float | None, burst: float | None, now: float):
        self.rate = rate
        self.burst = float(burst if burst is not None else max(1.0, rate or 1.0))
        self.tokens = self.burst
        self.stamp = now

    def admit(self, now: float) -> tuple[bool, float]:
        """(admitted, retry_after_s); consumes one token on admission."""
        if self.rate is None:
            return True, 0.0
        self.tokens = min(self.burst, self.tokens + (now - self.stamp) * self.rate)
        self.stamp = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True, 0.0
        return False, (1.0 - self.tokens) / self.rate


class _ClientState:
    def __init__(self, spec: ClientSpec, now: float):
        self.spec = spec
        self.queue: deque[_Pending] = deque()           # bounded by admission
        depth = spec.result_depth or 4 * spec.queue_depth
        self.results: deque[ServiceResult] = deque(maxlen=depth)
        self.bucket = _Bucket(spec.rate, spec.burst, now)


class InferenceService:
    """The always-on serving loop over a pool-backed runtime.

    ``backend`` is a ready :class:`ShardedRuntime` (single app: every
    client scores through the same switch program and shared flow state,
    in admission order) or a :class:`MultiAppFabric` (each client's
    :attr:`ClientSpec.app` names its program; states stay per-app).  The
    service does not rewind the backend between requests — state
    accumulates across chunks exactly like a switch that never stops.

    Two drive modes share all the logic:

    * **manual** — call :meth:`pump` yourself; with a :class:`VirtualClock`
      this is fully deterministic (the property tests and the oracle
      replay use it);
    * **threaded** — :meth:`start` spawns a dispatcher thread that pumps
      whenever work is queued (the benchmark and real producers use it).

    Admission takes only the service lock (never blocked by scoring), so
    the ingress gate keeps answering while the pool recovers a crashed
    worker mid-chunk.
    """

    def __init__(
        self,
        backend,
        clients,
        *,
        overload: str = "reject-new",
        chunk_size: int | None = None,
        clock: Callable[[], float] = time.monotonic,
        latency_window: int = 4096,
        own_backend: bool = True,
    ):
        if overload not in OVERLOAD_POLICIES:
            raise ValueError(
                f"unknown overload policy {overload!r}; pick one of {OVERLOAD_POLICIES}"
            )
        self.backend = backend
        self.overload = overload
        self.chunk_size = chunk_size
        self.clock = clock
        self.own_backend = own_backend
        self._is_fabric = hasattr(backend, "apps")
        if self._is_fabric:
            names = {app.name for app in backend.apps}
            for spec in clients:
                if spec.app is None:
                    raise ValueError(f"client {spec.name!r} needs an app binding")
                if spec.app not in names:
                    raise ValueError(
                        f"client {spec.name!r} bound to unknown app {spec.app!r}"
                    )
        now = clock()
        self._clients: dict[str, _ClientState] = {}
        for spec in clients:
            if spec.name in self._clients:
                raise ValueError(f"duplicate client {spec.name!r}")
            self._clients[spec.name] = _ClientState(spec, now)
        if not self._clients:
            raise ValueError("at least one client is required")
        self._order = list(self._clients)   # round-robin dispatch order
        self._rr = 0
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._dispatch_lock = threading.Lock()
        self._counts = dict.fromkeys(_COUNTERS, 0)
        self._latencies: deque[float] = deque(maxlen=latency_window)
        self._window_latencies: deque[float] = deque(maxlen=latency_window)
        self._next_id = 0
        self._seq = 0
        self._draining = False
        self._closed = False
        self._thread: threading.Thread | None = None
        self._window = self._mark_window()

    # ------------------------------------------------------------------
    # Gate 1: ingress
    # ------------------------------------------------------------------
    def submit(self, client: str, trace, deadline_s: float | None = None) -> Admission:
        """Offer one packet chunk; returns the explicit admission verdict.

        Never blocks on queue space or scoring: the caller always gets an
        answer now, and backpressure is the answer (``DEFERRED`` with a
        retry-after when rate-limited, ``SHED`` when the queue bound or
        the drain gate says no).
        """
        columns = as_trace_columns(trace)
        with self._lock:
            state = self._clients.get(client)
            if state is None:
                raise KeyError(f"unknown client {client!r}")
            now = self.clock()
            rid = self._next_id
            self._next_id += 1
            self._counts["submitted"] += 1
            if self._draining or self._closed:
                self._counts["shed"] += 1
                return Admission(SHED, rid, client, reason="draining")
            ok, retry_after = state.bucket.admit(now)
            if not ok:
                self._counts["deferred"] += 1
                return Admission(
                    DEFERRED, rid, client,
                    reason="rate-limited", retry_after_s=retry_after,
                )
            stride = 1
            occ = len(state.queue)
            depth = state.spec.queue_depth
            if occ >= depth:
                if self.overload == "reject-new":
                    self._counts["shed"] += 1
                    return Admission(SHED, rid, client, reason="queue-full")
                if self.overload == "drop-oldest":
                    oldest = state.queue.popleft()
                    self._counts["evicted"] += 1
                    self._deliver(
                        state,
                        ServiceResult(
                            request_id=oldest.request_id,
                            client=client,
                            status="evicted",
                            enqueued_at=oldest.enqueued_at,
                            decided_at=now,
                            time_to_decision_s=now - oldest.enqueued_at,
                            stride=oldest.stride,
                        ),
                    )
                else:  # degrade-to-sampling
                    if occ >= 2 * depth:
                        self._counts["shed"] += 1
                        return Admission(SHED, rid, client, reason="queue-full")
                    stride = 2 if occ < depth + (depth + 1) // 2 else 4
                    self._counts["sampled"] += 1
            budget = deadline_s if deadline_s is not None else state.spec.deadline_s
            state.queue.append(
                _Pending(
                    request_id=rid,
                    client=client,
                    columns=columns,
                    stride=stride,
                    enqueued_at=now,
                    deadline_at=None if budget is None else now + budget,
                )
            )
            self._counts["accepted"] += 1
            self._counts["packets_in"] += columns.n
            self._work.notify_all()
            return Admission(ACCEPTED, rid, client, stride=stride)

    # ------------------------------------------------------------------
    # Dispatch (manual pump or the dispatcher thread)
    # ------------------------------------------------------------------
    def pump(self, max_requests: int | None = None) -> int:
        """Score up to ``max_requests`` queued requests; returns how many
        were decided (scored, expired, or failed).

        Clients are served round-robin in registration order, so dispatch
        order — and therefore every completed result — is a deterministic
        function of the admission sequence.
        """
        decided = 0
        with self._dispatch_lock:
            while max_requests is None or decided < max_requests:
                with self._lock:
                    picked = self._pop_next()
                if picked is None:
                    break
                self._decide(picked)
                decided += 1
        return decided

    def _pop_next(self) -> _Pending | None:
        for step in range(len(self._order)):
            state = self._clients[self._order[(self._rr + step) % len(self._order)]]
            if state.queue:
                self._rr = (self._rr + step + 1) % len(self._order)
                return state.queue.popleft()
        return None

    def _decide(self, pending: _Pending) -> None:
        # _clients gains entries from concurrent submits under _lock;
        # the dispatch lock alone does not exclude those inserts.
        with self._lock:
            state = self._clients[pending.client]
        now = self.clock()
        if pending.deadline_at is not None and now > pending.deadline_at:
            with self._lock:
                self._counts["expired"] += 1
                self._deliver(
                    state,
                    ServiceResult(
                        request_id=pending.request_id,
                        client=pending.client,
                        status="expired",
                        enqueued_at=pending.enqueued_at,
                        decided_at=now,
                        time_to_decision_s=now - pending.enqueued_at,
                        stride=pending.stride,
                    ),
                )
            return
        columns = pending.columns
        if pending.stride > 1:
            columns = columns.take(
                np.arange(0, columns.n, pending.stride, dtype=np.int64)
            )
        try:
            seq = self._seq
            self._seq += 1
            result = self._score(pending.client, columns)
        except PoolError as exc:
            with self._lock:
                self._counts["failed"] += 1
                self._deliver(
                    state,
                    ServiceResult(
                        request_id=pending.request_id,
                        client=pending.client,
                        status="failed",
                        seq=seq,
                        enqueued_at=pending.enqueued_at,
                        decided_at=self.clock(),
                        stride=pending.stride,
                        error=str(exc),
                    ),
                )
            return
        decided_at = self.clock()
        ttd = decided_at - pending.enqueued_at
        with self._lock:
            self._counts["completed"] += 1
            self._counts["packets_out"] += columns.n
            if pending.deadline_at is not None and decided_at > pending.deadline_at:
                self._counts["late"] += 1
            self._latencies.append(ttd)
            self._window_latencies.append(ttd)
            self._deliver(
                state,
                ServiceResult(
                    request_id=pending.request_id,
                    client=pending.client,
                    status="completed",
                    result=result,
                    seq=seq,
                    enqueued_at=pending.enqueued_at,
                    decided_at=decided_at,
                    time_to_decision_s=ttd,
                    stride=pending.stride,
                    n_packets=columns.n,
                ),
            )

    def _score(self, client: str, columns):
        """One chunk through the backend (state carries over — always-on)."""
        kwargs = {} if self.chunk_size is None else {"chunk_size": self.chunk_size}
        if not self._is_fabric:
            return self.backend.process_trace(columns, **kwargs)
        app = self._clients[client].spec.app
        empty = columns.slice(slice(0, 0))
        traces = {a.name: (columns if a.name == app else empty)
                  for a in self.backend.apps}
        return self.backend.run(traces, **kwargs).results[app]

    def _deliver(self, state: _ClientState, result: ServiceResult) -> None:
        # deque(maxlen=) drops the head silently; count it first.
        if len(state.results) == state.results.maxlen:
            self._counts["results_dropped"] += 1
        state.results.append(result)

    # ------------------------------------------------------------------
    # Gate 2: stream-results
    # ------------------------------------------------------------------
    def take_results(
        self, client: str | None = None, max_items: int | None = None
    ) -> list[ServiceResult]:
        """Drain delivered results (one client, or all, in delivery order)."""
        with self._lock:
            names = [client] if client is not None else list(self._order)
            out: list[ServiceResult] = []
            for name in names:
                state = self._clients.get(name)
                if state is None:
                    raise KeyError(f"unknown client {name!r}")
                while state.results and (
                    max_items is None or len(out) < max_items
                ):
                    out.append(state.results.popleft())
            if client is None:
                out.sort(key=lambda r: (r.decided_at, r.request_id))
            return out

    # ------------------------------------------------------------------
    # Gate 3: query-stats
    # ------------------------------------------------------------------
    def stats(self) -> ServiceStats:
        """Cumulative counters since construction."""
        with self._lock:
            return self._stats_locked(self._counts, list(self._latencies), None)

    def interval_stats(self) -> ServiceStats:
        """Counters accumulated since the previous ``interval_stats`` call.

        The pool's per-window health rides on
        :meth:`PoolHealth.snapshot`/:meth:`PoolHealth.since` — no re-fork,
        no reset of the live counters.
        """
        with self._lock:
            counts, pool_base = self._window
            delta = {k: self._counts[k] - counts[k] for k in _COUNTERS}
            window_lat = list(self._window_latencies)
            self._window_latencies.clear()
            health = self._pool_health()
            pool = None
            if health is not None:
                pool = (
                    health.since(pool_base)
                    if pool_base is not None
                    else health.snapshot()
                )
            self._window = self._mark_window()
            return self._stats_locked(delta, window_lat, pool)

    def _mark_window(self):
        health = self._pool_health()
        return (
            dict(self._counts),
            None if health is None else health.snapshot(),
        )

    def _pool_health(self) -> PoolHealth | None:
        return getattr(self.backend, "pool_health", None)

    def _stats_locked(self, counts, latencies, pool) -> ServiceStats:
        p50 = p99 = float("nan")
        if latencies:
            p50 = float(np.percentile(latencies, 50))
            p99 = float(np.percentile(latencies, 99))
        if pool is None:
            health = self._pool_health()
            pool = None if health is None else health.snapshot()
        return ServiceStats(
            **{k: counts[k] for k in _COUNTERS},
            p50_decision_s=p50,
            p99_decision_s=p99,
            queue_depths={
                name: len(state.queue) for name, state in self._clients.items()
            },
            pool=pool,
        )

    # ------------------------------------------------------------------
    # Gate 4: admin
    # ------------------------------------------------------------------
    def start(self) -> "InferenceService":
        """Spawn the dispatcher thread (idempotent)."""
        with self._lock:
            if self._closed:
                raise RuntimeError("service is closed")
            if self._thread is None or not self._thread.is_alive():
                self._thread = threading.Thread(
                    target=self._serve_loop,
                    name="inference-service",
                    daemon=True,
                )
                self._thread.start()
        return self

    def _serve_loop(self) -> None:
        while True:
            with self._work:
                if self._closed and not self._queued_locked():
                    return
                if not self._queued_locked():
                    # Bounded wait: re-checks closed/drain flags on a tick
                    # even if a notify is lost.
                    self._work.wait(timeout=0.05)
                    if self._closed and not self._queued_locked():
                        return
            self.pump()

    def _queued_locked(self) -> int:
        return sum(len(state.queue) for state in self._clients.values())

    @property
    def draining(self) -> bool:
        return self._draining

    def drain(self, timeout: float = 30.0) -> ServiceStats:
        """Graceful bounded shutdown of admission: stop admitting, finish
        everything in flight, then report.  Results stay available on the
        stream-results gate afterwards.

        With no dispatcher thread running, pending work is pumped inline;
        otherwise this waits (at most ``timeout`` seconds) for the thread
        to empty the queues.
        """
        with self._lock:
            self._draining = True
            self._work.notify_all()
            threaded = self._thread is not None and self._thread.is_alive()
        if not threaded:
            self.pump()
        else:
            deadline = time.monotonic() + timeout
            while time.monotonic() < deadline:
                with self._lock:
                    if not self._queued_locked():
                        break
                time.sleep(0.005)
            # One inline pump covers a dispatcher that died mid-drain.
            self.pump()
        return self.stats()

    def close(self, timeout: float = 30.0) -> None:
        """Drain, stop the dispatcher, and (if owned) close the backend."""
        with self._lock:
            if self._closed:
                return
        self.drain(timeout=timeout)
        with self._lock:
            self._closed = True
            self._work.notify_all()
            thread = self._thread
            self._thread = None
        if thread is not None:
            thread.join(timeout=timeout)
        if self.own_backend and hasattr(self.backend, "close"):
            self.backend.close()

    def __enter__(self) -> "InferenceService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
