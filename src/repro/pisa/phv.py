"""Packet Header Vectors.

PISA parsers emit a PHV — "a fixed-layout, structured format" — that flows
through the match-action stages.  Taurus extends the PHV with a dense
feature region: "only the required feature headers enter the MapReduce
block as a dense PHV (to minimize sparse data occurrences)" (Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..fixpoint import FIX8, FixedPointFormat

__all__ = ["PHVLayout", "PHV"]


@dataclass(frozen=True)
class PHVLayout:
    """Field names and bit-widths of the PHV (a fixed hardware layout)."""

    fields: tuple[tuple[str, int], ...]
    feature_fields: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        names = [name for name, __ in self.fields]
        if len(set(names)) != len(names):
            raise ValueError("duplicate PHV field names")
        missing = set(self.feature_fields) - set(names)
        if missing:
            raise ValueError(f"feature fields not in layout: {sorted(missing)}")

    @property
    def total_bits(self) -> int:
        return sum(width for __, width in self.fields)

    def width_of(self, name: str) -> int:
        for field_name, width in self.fields:
            if field_name == name:
                return width
        raise KeyError(name)


@dataclass
class PHV:
    """One packet's header vector (values stored as Python ints/floats)."""

    layout: PHVLayout
    values: dict[str, float] = field(default_factory=dict)

    def get(self, name: str, default: float = 0.0) -> float:
        self.layout.width_of(name)  # validates the field exists
        return self.values.get(name, default)

    def set(self, name: str, value: float) -> None:
        width = self.layout.width_of(name)
        if name not in self.layout.feature_fields:
            # Header fields are unsigned integers of the declared width.
            mask = (1 << width) - 1
            value = int(value) & mask
        self.values[name] = value

    # ------------------------------------------------------------------
    # Feature region: the dense slice that enters the MapReduce block
    # ------------------------------------------------------------------
    def feature_vector(self, fmt: FixedPointFormat = FIX8) -> np.ndarray:
        """Features as fixed-point-formatted values (what the fabric sees).

        Preprocessing MATs "format these features as fixed-point numbers"
        (Section 5.2.2); the roundtrip applies that quantization.
        """
        raw = np.array(
            [self.values.get(name, 0.0) for name in self.layout.feature_fields]
        )
        return fmt.roundtrip(np.clip(raw, fmt.min_value, fmt.max_value))

    def set_features(self, values: np.ndarray) -> None:
        names = self.layout.feature_fields
        values = np.asarray(values, dtype=np.float64)
        if len(values) != len(names):
            raise ValueError(
                f"expected {len(names)} features, got {len(values)}"
            )
        for name, value in zip(names, values):
            self.values[name] = float(value)
