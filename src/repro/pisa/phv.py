"""Packet Header Vectors.

PISA parsers emit a PHV — "a fixed-layout, structured format" — that flows
through the match-action stages.  Taurus extends the PHV with a dense
feature region: "only the required feature headers enter the MapReduce
block as a dense PHV (to minimize sparse data occurrences)" (Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..fixpoint import FIX8, FixedPointFormat

__all__ = ["PHVLayout", "PHV", "PHVBatch", "PHVRow"]


@dataclass(frozen=True)
class PHVLayout:
    """Field names and bit-widths of the PHV (a fixed hardware layout)."""

    fields: tuple[tuple[str, int], ...]
    feature_fields: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        names = [name for name, __ in self.fields]
        if len(set(names)) != len(names):
            raise ValueError("duplicate PHV field names")
        missing = set(self.feature_fields) - set(names)
        if missing:
            raise ValueError(f"feature fields not in layout: {sorted(missing)}")

    @property
    def total_bits(self) -> int:
        return sum(width for __, width in self.fields)

    def width_of(self, name: str) -> int:
        for field_name, width in self.fields:
            if field_name == name:
                return width
        raise KeyError(name)


@dataclass
class PHV:
    """One packet's header vector (values stored as Python ints/floats)."""

    layout: PHVLayout
    values: dict[str, float] = field(default_factory=dict)

    def get(self, name: str, default: float = 0.0) -> float:
        self.layout.width_of(name)  # validates the field exists
        return self.values.get(name, default)

    def set(self, name: str, value: float) -> None:
        width = self.layout.width_of(name)
        if name not in self.layout.feature_fields:
            # Header fields are unsigned integers of the declared width.
            mask = (1 << width) - 1
            value = int(value) & mask
        self.values[name] = value

    # ------------------------------------------------------------------
    # Feature region: the dense slice that enters the MapReduce block
    # ------------------------------------------------------------------
    def feature_vector(self, fmt: FixedPointFormat = FIX8) -> np.ndarray:
        """Features as fixed-point-formatted values (what the fabric sees).

        Preprocessing MATs "format these features as fixed-point numbers"
        (Section 5.2.2); the roundtrip applies that quantization.
        """
        raw = np.array(
            [self.values.get(name, 0.0) for name in self.layout.feature_fields]
        )
        return fmt.roundtrip(np.clip(raw, fmt.min_value, fmt.max_value))

    def set_features(self, values: np.ndarray) -> None:
        names = self.layout.feature_fields
        values = np.asarray(values, dtype=np.float64)
        if len(values) != len(names):
            raise ValueError(
                f"expected {len(names)} features, got {len(values)}"
            )
        for name, value in zip(names, values):
            self.values[name] = float(value)


class PHVBatch:
    """``N`` packets' header vectors as one column per field.

    The columnar twin of :class:`PHV`: the batched pipeline parses, matches,
    and acts on these arrays instead of per-packet dicts.  Semantics mirror
    the scalar PHV exactly — header fields are masked to their declared
    width on write, feature fields stay float, and a per-field ``written``
    mask stands in for dict-key presence (so "was ``decision`` explicitly
    set?" works the same way).  Reads of never-written fields return zeros,
    matching ``PHV.get``'s default.
    """

    __slots__ = ("layout", "n", "values", "written")

    def __init__(self, layout: PHVLayout, n: int):
        self.layout = layout
        self.n = n
        self.values: dict[str, np.ndarray] = {}
        self.written: dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Column access
    # ------------------------------------------------------------------
    def _materialize(self, name: str) -> np.ndarray:
        col = self.values.get(name)
        if col is None:
            dtype = (
                np.float64 if name in self.layout.feature_fields else np.int64
            )
            col = np.zeros(self.n, dtype=dtype)
            self.values[name] = col
            self.written[name] = np.zeros(self.n, dtype=bool)
        return col

    def column(self, name: str) -> np.ndarray:
        """The field's value column (zeros where never written).

        Returned arrays are read-only views: written fields would alias
        live pipeline state while never-written fields are synthesized
        zeros, so allowing in-place mutation would succeed or vanish
        depending on history.  Write through :meth:`set_column` instead.
        """
        self.layout.width_of(name)  # validates the field exists
        col = self.values.get(name)
        if col is None:
            dtype = np.float64 if name in self.layout.feature_fields else np.int64
            col = np.zeros(self.n, dtype=dtype)
        view = col[:]
        view.flags.writeable = False
        return view

    def int_column(self, name: str) -> np.ndarray:
        """The column as int64 (``int(phv.get(name))`` per row)."""
        col = self.column(name)
        if col.dtype == np.int64:
            return col
        return col.astype(np.int64)  # truncates toward zero, like int()

    def was_written(self, name: str) -> np.ndarray:
        """Which rows had the field explicitly set (dict-presence twin)."""
        mask = self.written.get(name)
        if mask is None:
            return np.zeros(self.n, dtype=bool)
        return mask

    def set_column(self, name: str, values, where: np.ndarray | None = None) -> None:
        """Write a field for all rows (or the rows selected by ``where``).

        Applies the scalar ``PHV.set`` conversion per row: header fields
        are truncated to int and masked to the declared width; feature
        fields are stored as float.
        """
        width = self.layout.width_of(name)
        col = self._materialize(name)
        if name in self.layout.feature_fields:
            vals = np.asarray(values, dtype=np.float64)
        else:
            vals = np.asarray(values)
            if vals.dtype != np.int64:
                vals = vals.astype(np.int64)  # int() truncation semantics
            vals = vals & np.int64((1 << width) - 1)
        if where is None:
            col[:] = vals
            self.written[name][:] = True
        else:
            # Accept a scalar, a full-length column, or one value per
            # selected row.
            if np.ndim(vals) > 0 and len(vals) == self.n:
                vals = vals[where]
            col[where] = vals
            self.written[name][where] = True

    def clear(self, name: str) -> None:
        """Forget the field entirely (``phv.values.pop(name, None)``)."""
        self.values.pop(name, None)
        self.written.pop(name, None)

    # ------------------------------------------------------------------
    # Feature region
    # ------------------------------------------------------------------
    def feature_matrix(self, fmt: FixedPointFormat = FIX8) -> np.ndarray:
        """The dense ``[N, D]`` feature block, fixed-point formatted.

        Row ``i`` equals ``self.row(i)``-as-PHV ``feature_vector()`` —
        the same clip + quantize roundtrip, vectorized.
        """
        names = self.layout.feature_fields
        raw = np.empty((self.n, len(names)), dtype=np.float64)
        for j, name in enumerate(names):
            raw[:, j] = self.column(name)
        return fmt.roundtrip(np.clip(raw, fmt.min_value, fmt.max_value))

    def set_features(self, matrix: np.ndarray, where: np.ndarray | None = None) -> None:
        """Write the feature region from an ``[N, D]`` block."""
        names = self.layout.feature_fields
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.shape[1] != len(names):
            raise ValueError(
                f"expected {len(names)} features, got {matrix.shape[1]}"
            )
        for j, name in enumerate(names):
            self.set_column(name, matrix[:, j], where=where)

    # ------------------------------------------------------------------
    # Scalar fallback
    # ------------------------------------------------------------------
    def row(self, i: int) -> "PHVRow":
        """A PHV-compatible scalar view of packet ``i`` (for fallback
        evaluation of non-vectorized callables)."""
        return PHVRow(self, i)

    def to_phv(self, i: int) -> PHV:
        """Materialize packet ``i`` as a standalone scalar :class:`PHV`."""
        phv = PHV(self.layout)
        for name, col in self.values.items():
            if self.written[name][i]:
                if name in self.layout.feature_fields:
                    phv.values[name] = float(col[i])
                else:
                    phv.values[name] = int(col[i])
        return phv


class PHVRow:
    """One row of a :class:`PHVBatch`, quacking like a :class:`PHV`.

    Hands non-vectorized callables (custom actions, bypass predicates) the
    scalar view they expect; writes go back into the batch columns.
    """

    __slots__ = ("batch", "i")

    def __init__(self, batch: PHVBatch, i: int):
        self.batch = batch
        self.i = i

    @property
    def layout(self) -> PHVLayout:
        return self.batch.layout

    def get(self, name: str, default: float = 0.0) -> float:
        self.batch.layout.width_of(name)
        mask = self.batch.written.get(name)
        if mask is None or not mask[self.i]:
            return default
        value = self.batch.values[name][self.i]
        if name in self.batch.layout.feature_fields:
            return float(value)
        return int(value)

    def set(self, name: str, value: float) -> None:
        width = self.batch.layout.width_of(name)
        col = self.batch._materialize(name)
        if name in self.batch.layout.feature_fields:
            col[self.i] = float(value)
        else:
            col[self.i] = int(value) & ((1 << width) - 1)
        self.batch.written[name][self.i] = True
