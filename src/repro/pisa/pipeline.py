"""The Taurus data-plane pipeline (Fig. 6).

Parse -> preprocessing MATs -> {MapReduce block | bypass} -> postprocessing
MATs -> scheduler.  Preprocessing decides (as PHV metadata) whether the
packet needs ML; non-ML packets take the bypass sub-queue and incur no
added latency.  A round-robin arbiter merges the two paths in front of the
postprocessing MATs.

Latency accounting: a parsed packet crosses ``n_mat_stages`` single-cycle
MAT stages plus the scheduler (the ~1 us baseline datacenter switch of
Section 5.1.2); ML packets additionally pay the MapReduce block's compiled
latency.

Two execution paths share these semantics:

* :meth:`TaurusPipeline.process` — the per-packet scalar loop, the
  semantic oracle;
* :meth:`TaurusPipeline.process_trace_batch` — the vectorized path, which
  parses, matches, accumulates, scores, and decides whole chunks of a
  columnar trace at once and is bit/stat-identical to running
  :meth:`process` per packet (same decisions, scores, latencies, stats
  counters, register and queue state).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..datasets.packets import TraceColumns
from ..hw.grid import MapReduceBlock
from ..mapreduce.ir import DataflowGraph
from .mat import MatchActionTable
from .packet import Packet
from .parser import Parser, default_layout, default_parser
from .phv import PHV, PHVBatch
from .registers import FlowFeatureAccumulator
from .scheduler import PacketQueue, RoundRobinArbiter

__all__ = [
    "PipelineResult",
    "TracePipelineResult",
    "TaurusPipeline",
    "DECISION_FORWARD",
    "DECISION_DROP",
    "DECISION_FLAG",
    "DEFAULT_TRACE_CHUNK",
    "action_postprocess",
    "port_bypass",
    "threshold_postprocess",
]

DECISION_FORWARD = 0
DECISION_FLAG = 1
DECISION_DROP = 2

#: Base one-way latency of the conventional switch stages (parse + MATs +
#: queueing), Section 5.1.2's "datacenter switch latency of 1 us".
BASE_SWITCH_LATENCY_NS = 1000.0

#: Packets per vectorized pass through the batched pipeline path.
DEFAULT_TRACE_CHUNK = 8192


def _default_bypass(phv: PHV) -> bool:
    """Default policy: every packet goes through ML."""
    return False


def threshold_postprocess(
    threshold: float = 0.5,
) -> tuple[Callable[[np.ndarray], int], Callable[[np.ndarray], np.ndarray]]:
    """A matched (scalar, vectorized) postprocess pair for one threshold.

    Both flag a fabric score ``>= threshold`` (the anomaly use case);
    building them together keeps the two execution paths in lockstep.
    """

    def scalar(value: np.ndarray) -> int:
        return (
            DECISION_FLAG
            if float(np.atleast_1d(value)[0]) >= threshold
            else DECISION_FORWARD
        )

    def batch(values: np.ndarray) -> np.ndarray:
        return np.where(values[:, 0] >= threshold, DECISION_FLAG, DECISION_FORWARD)

    return scalar, batch


def action_postprocess(
    component: int = 0,
) -> tuple[Callable[[np.ndarray], int], Callable[[np.ndarray], np.ndarray]]:
    """A matched (scalar, vectorized) pair passing a fabric output through.

    For apps whose fabric output *is* the decision code — an argmax action
    index (the congestion LSTM), a nearest-centroid cluster id (the IoT
    KMeans) — the postprocess just reads output ``component`` as an int.
    Like :func:`threshold_postprocess` and :func:`port_bypass`, the pair
    is built together so the per-packet and batched paths cannot drift,
    and installing both keeps trace-scale runs off the per-row fallback
    loop.
    """
    component = int(component)

    def scalar(value: np.ndarray) -> int:
        return int(np.atleast_1d(value)[component])

    def batch(values: np.ndarray) -> np.ndarray:
        return values[:, component].astype(np.int64)

    return scalar, batch


def port_bypass(
    ports, field: str = "dst_port"
) -> tuple[Callable[["PHV"], bool], Callable[["PHVBatch"], np.ndarray]]:
    """A matched (scalar, vectorized) bypass pair keyed on a header field.

    Packets whose ``field`` value is in ``ports`` (an int or an iterable
    of ints) skip the ML block — the "trusted service port" policy the
    telemetry tests model.  Like :func:`threshold_postprocess`, the pair
    is built together so the per-packet and batched paths cannot drift;
    install both (``bypass_predicate=`` and ``bypass_predicate_batch=``)
    to keep trace-scale runs off the per-row fallback loop.
    """
    if isinstance(ports, (int, np.integer)):
        ports = (ports,)
    wanted = np.array(sorted({int(p) for p in ports}), dtype=np.int64)
    wanted_set = frozenset(int(p) for p in wanted)

    def scalar(phv: PHV) -> bool:
        return int(phv.get(field)) in wanted_set

    def batch(batch: PHVBatch) -> np.ndarray:
        return np.isin(batch.int_column(field), wanted)

    return scalar, batch


_default_postprocess, _default_postprocess_batch = threshold_postprocess(0.5)


@dataclass
class PipelineResult:
    """Outcome of one packet's transit."""

    packet: Packet
    phv: PHV
    decision: int
    ml_score: float | None
    latency_ns: float
    bypassed: bool


@dataclass
class TracePipelineResult:
    """Columnar outcome of a whole trace's transit (arrival-time order).

    The batched twin of a ``list[PipelineResult]``: position ``i`` holds
    the ``i``-th processed packet's outcome; ``order`` maps positions back
    to the caller's original packet sequence.  ``ml_scores`` is NaN for
    bypassed packets (the scalar path's ``None``).
    """

    order: np.ndarray        # int64 [N] -> index into the input sequence
    times: np.ndarray        # float64 [N]
    decisions: np.ndarray    # int64 [N]
    ml_scores: np.ndarray    # float64 [N], NaN where bypassed
    latencies_ns: np.ndarray  # float64 [N]
    bypassed: np.ndarray     # bool [N]
    aggregates: dict[str, np.ndarray] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.decisions)

    @property
    def flagged(self) -> int:
        return int(np.count_nonzero(self.decisions == DECISION_FLAG))

    @property
    def dropped(self) -> int:
        return int(np.count_nonzero(self.decisions == DECISION_DROP))


@dataclass
class TaurusPipeline:
    """A programmable switch pipeline with an attached MapReduce block.

    Parameters
    ----------
    block:
        The configured MapReduce block (or None for a plain PISA switch).
    feature_names:
        Names of the dense PHV feature region.
    bypass_predicate:
        Decides from the parsed PHV whether the packet skips ML (default:
        everything goes through ML).
    postprocess:
        Maps the fabric's numeric output to a decision code; default
        thresholds score >= 0.5 as FLAG (the anomaly use case).
    bypass_predicate_batch / postprocess_batch:
        Optional vectorized twins used by :meth:`process_trace_batch`
        (``PHVBatch -> bool[N]`` and ``values[N, W] -> int[N]``).  When a
        custom scalar hook has no batched twin, the batched path falls
        back to calling the scalar hook per packet — still correct, just
        slower.
    program:
        The dataflow program this pipeline's packets must score through.
        ``None`` (the default) trusts whatever the block is configured
        with.  When set — the multi-app fabric sets it — both execution
        paths *steer* the shared block before any ML work: if another
        app's program is resident, the block reconfigures (with
        issue-clock accounting) first.  Per-packet results are unaffected
        by steering; only the modeled drain pays for the swaps.
    """

    block: MapReduceBlock | None
    feature_names: tuple[str, ...]
    bypass_predicate: Callable[[PHV], bool] = field(default=_default_bypass)
    postprocess: Callable[[np.ndarray], int] = field(default=_default_postprocess)
    bypass_predicate_batch: Callable[[PHVBatch], np.ndarray] | None = None
    postprocess_batch: Callable[[np.ndarray], np.ndarray] | None = None
    program: DataflowGraph | None = None
    parser: Parser = field(init=False)
    preprocess_tables: list[MatchActionTable] = field(default_factory=list)
    postprocess_tables: list[MatchActionTable] = field(default_factory=list)
    accumulator: FlowFeatureAccumulator = field(default_factory=FlowFeatureAccumulator)
    ml_queue: PacketQueue = field(init=False)
    bypass_queue: PacketQueue = field(init=False)
    stats: dict[str, int] = field(
        default_factory=lambda: {"ml": 0, "bypass": 0, "flagged": 0, "dropped": 0}
    )

    def __post_init__(self) -> None:
        layout = default_layout(self.feature_names)
        self.parser = default_parser(layout)
        self.ml_queue = PacketQueue("mapreduce", capacity=8192)
        self.bypass_queue = PacketQueue("bypass", capacity=8192)
        self.arbiter = RoundRobinArbiter([self.ml_queue, self.bypass_queue])

    # ------------------------------------------------------------------
    # Control-plane hooks
    # ------------------------------------------------------------------
    def install_preprocess(self, table: MatchActionTable) -> None:
        self.preprocess_tables.append(table)

    def install_postprocess(self, table: MatchActionTable) -> None:
        self.postprocess_tables.append(table)

    def steer(self) -> bool:
        """Ensure the (possibly shared) block runs this pipeline's program.

        Returns True when a swap happened.  Called by both execution paths
        immediately before ML work, so a block time-multiplexed between
        apps always scores a packet with the right program and the issue
        clock picks up the swap cost.  A no-op for pipelines without a
        pinned :attr:`program` (the single-app shape) or whose program is
        already resident.
        """
        if (
            self.program is None
            or self.block is None
            or self.block.graph is self.program
        ):
            return False
        self.block.reconfigure(self.program, account=True)
        return True

    # ------------------------------------------------------------------
    # Per-packet processing
    # ------------------------------------------------------------------
    def process(self, packet: Packet) -> PipelineResult:
        """One packet through parse/preprocess/ML-or-bypass/postprocess."""
        phv = self.parser.parse(packet)

        # Stateful feature accumulation (Section 3.1).
        aggregates = self.accumulator.update(
            packet.five_tuple,
            packet.size_bytes,
            urgent=bool(packet.headers.get("urgent_flag", 0)),
            now_s=packet.arrival_time,
        )
        for key, value in aggregates.items():
            packet.metadata[key] = float(value)

        # Flow-level model features ride in the dense PHV region.
        if packet.features is not None:
            phv.set_features(packet.features)

        for table in self.preprocess_tables:
            table.apply(phv)

        bypass = self.bypass_predicate(phv) or self.block is None
        phv.set("ml_bypass", 1 if bypass else 0)

        ml_score: float | None = None
        if bypass:
            self.bypass_queue.push(packet)
            self.stats["bypass"] += 1
            latency = BASE_SWITCH_LATENCY_NS
            decision = DECISION_FORWARD
        else:
            self.ml_queue.push(packet)
            self.stats["ml"] += 1
            self.steer()
            result = self.block.process(phv.feature_vector())
            ml_score = float(np.atleast_1d(result.value)[0])
            phv.set("ml_score", int(abs(ml_score) * 256) & 0xFFFF)
            latency = BASE_SWITCH_LATENCY_NS + result.latency_ns
            decision = self.postprocess(result.value)

        # Postprocessing rules may override the ML decision (safety bounds,
        # Section 3.2).  An explicit write to the PHV's decision field wins.
        phv.values.pop("decision", None)
        for table in self.postprocess_tables:
            table.apply(phv)
        if "decision" in phv.values:
            decision = int(phv.get("decision"))

        if decision == DECISION_DROP:
            self.stats["dropped"] += 1
        elif decision == DECISION_FLAG:
            self.stats["flagged"] += 1
        self.arbiter.select()  # merge point drains one packet per slot

        return PipelineResult(
            packet=packet,
            phv=phv,
            decision=decision,
            ml_score=ml_score,
            latency_ns=latency,
            bypassed=bypass,
        )

    def process_trace(self, packets: list[Packet]) -> list[PipelineResult]:
        """Convenience: run a list of packets in arrival order."""
        return [self.process(p) for p in sorted(packets, key=lambda p: p.arrival_time)]

    # ------------------------------------------------------------------
    # Batched trace processing
    # ------------------------------------------------------------------
    def process_trace_batch(
        self, trace, chunk_size: int = DEFAULT_TRACE_CHUNK
    ) -> TracePipelineResult:
        """The whole trace through the vectorized pipeline path.

        ``trace`` is either a :class:`~repro.datasets.packets.PacketTrace`
        (its cached :meth:`~repro.datasets.packets.PacketTrace.columns`
        feed the pipeline directly) or a list of :class:`Packet` objects
        (columns are built on the fly, and flow aggregates are written
        back into each packet's ``metadata`` as the scalar loop does).

        Packets stream through in arrival order, ``chunk_size`` at a time:
        vectorized parse, batched flow-register accumulation, batched MAT
        stages, a chunked pass through the MapReduce block's batched graph
        interpreter for non-bypass packets, and vectorized decisions.
        Every observable effect — results, ``stats``, MAT counters,
        register contents, queue watermarks, the block's issue clock —
        matches the scalar loop exactly.
        """
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        if isinstance(trace, TraceColumns):
            columns, packets = trace, None
        elif hasattr(trace, "columns"):
            columns, packets = trace.columns(), None
        else:
            packets = list(trace)
            columns = TraceColumns.from_packets(packets)

        n = columns.n
        order = np.argsort(columns.times, kind="stable")
        if not np.array_equal(order, np.arange(n)):
            columns = columns.take(order)
            if packets is not None:
                packets = [packets[i] for i in order]

        decisions = np.zeros(n, dtype=np.int64)
        scores = np.full(n, np.nan)
        latencies = np.empty(n, dtype=np.float64)
        bypassed = np.zeros(n, dtype=bool)
        aggregates: dict[str, list[np.ndarray]] = {}

        for start in range(0, n, chunk_size):
            sl = slice(start, min(start + chunk_size, n))
            chunk = columns.slice(sl)
            chunk_packets = None if packets is None else packets[sl]
            dec, sc, lat, byp, agg = self._process_chunk(chunk, chunk_packets)
            decisions[sl] = dec
            scores[sl] = sc
            latencies[sl] = lat
            bypassed[sl] = byp
            for key, values in agg.items():
                aggregates.setdefault(key, []).append(values)

        return TracePipelineResult(
            order=order,
            times=columns.times,
            decisions=decisions,
            ml_scores=scores,
            latencies_ns=latencies,
            bypassed=bypassed,
            aggregates={
                key: np.concatenate(parts) for key, parts in aggregates.items()
            },
        )

    def _process_chunk(self, chunk: TraceColumns, chunk_packets):
        """One chunk through every pipeline stage, vectorized."""
        m = chunk.n
        batch = self.parser.parse_batch(chunk.headers, chunk.payload_len)

        agg = self.accumulator.update_batch(
            chunk.five_tuple_columns(),
            chunk.sizes,
            chunk.header("urgent_flag") != 0,
            chunk.times,
        )
        if chunk_packets is not None:
            for j, packet in enumerate(chunk_packets):
                meta = packet.metadata
                for key, values in agg.items():
                    meta[key] = float(values[j])

        if chunk.features is not None and chunk.has_features.any():
            batch.set_features(chunk.features, where=chunk.has_features)

        for table in self.preprocess_tables:
            table.apply_batch(batch)

        bypass = self._bypass_mask(batch)
        if self.block is None:
            bypass = np.ones(m, dtype=bool)
        batch.set_column("ml_bypass", bypass.astype(np.int64))

        ml = ~bypass
        n_ml = int(np.count_nonzero(ml))
        chunk_scores = np.full(m, np.nan)
        chunk_decisions = np.zeros(m, dtype=np.int64)
        chunk_latencies = np.full(m, BASE_SWITCH_LATENCY_NS)
        self.stats["bypass"] += m - n_ml
        if n_ml:
            self.stats["ml"] += n_ml
            self.steer()
            result = self.block.run_batch(batch.feature_matrix()[ml])
            values = result.values
            ml_scores = values[:, 0]
            chunk_scores[ml] = ml_scores
            batch.set_column(
                "ml_score",
                (np.abs(ml_scores) * 256).astype(np.int64) & 0xFFFF,
                where=ml,
            )
            chunk_latencies[ml] = BASE_SWITCH_LATENCY_NS + result.latency_ns
            chunk_decisions[ml] = self._decide(values)

        batch.clear("decision")
        for table in self.postprocess_tables:
            table.apply_batch(batch)
        overridden = batch.was_written("decision")
        if overridden.any():
            chunk_decisions[overridden] = batch.int_column("decision")[overridden]

        self.stats["dropped"] += int(
            np.count_nonzero(chunk_decisions == DECISION_DROP)
        )
        self.stats["flagged"] += int(
            np.count_nonzero(chunk_decisions == DECISION_FLAG)
        )
        self._account_queue_transit(bypass, chunk_packets)
        return chunk_decisions, chunk_scores, chunk_latencies, bypass, agg

    def _bypass_mask(self, batch: PHVBatch) -> np.ndarray:
        """Evaluate the bypass predicate over a batch."""
        if self.bypass_predicate_batch is not None:
            return np.asarray(self.bypass_predicate_batch(batch), dtype=bool)
        if self.bypass_predicate is _default_bypass:
            return np.zeros(batch.n, dtype=bool)
        return np.fromiter(
            (bool(self.bypass_predicate(batch.row(i))) for i in range(batch.n)),
            bool,
            batch.n,
        )

    def _decide(self, values: np.ndarray) -> np.ndarray:
        """Map fabric outputs ``[N, W]`` to decision codes ``[N]``."""
        if self.postprocess_batch is not None:
            return np.asarray(self.postprocess_batch(values), dtype=np.int64)
        if self.postprocess is _default_postprocess:
            return _default_postprocess_batch(values).astype(np.int64)
        return np.fromiter(
            (int(self.postprocess(row)) for row in values), np.int64, len(values)
        )

    def _account_queue_transit(self, bypass: np.ndarray, chunk_packets) -> None:
        """Replicate the scalar per-packet queue/arbiter state updates.

        The scalar loop pushes each packet onto its sub-queue and
        immediately drains one via the round-robin arbiter, so queue depth
        never exceeds one and the arbiter always pops the packet just
        pushed.  With empty queues that collapses to a closed form
        (watermarks hit one, the turn follows the last packet); if a
        caller left items queued, fall back to replaying the sequence.
        """
        m = len(bypass)
        if m == 0:
            return
        queues = (self.ml_queue, self.bypass_queue)
        if any(len(q) for q in queues) or any(q.capacity < 1 for q in queues):
            for j in range(m):
                queue = self.bypass_queue if bypass[j] else self.ml_queue
                queue.push(None if chunk_packets is None else chunk_packets[j])
                self.arbiter.select()
            return
        n_bypass = int(np.count_nonzero(bypass))
        if n_bypass < m:
            self.ml_queue.high_watermark = max(self.ml_queue.high_watermark, 1)
        if n_bypass:
            self.bypass_queue.high_watermark = max(
                self.bypass_queue.high_watermark, 1
            )
        last_queue = 1 if bypass[-1] else 0  # arbiter order: [ml, bypass]
        self.arbiter._turn = (last_queue + 1) % len(self.arbiter.queues)

    # ------------------------------------------------------------------
    # State transport (sharded runtime)
    # ------------------------------------------------------------------
    #: Register arrays carried by :meth:`state_snapshot`.
    _REGISTER_NAMES = ("packet_count", "byte_count", "urgent_count", "first_seen_ms")

    def state_snapshot(self) -> dict:
        """Every mutable observable as a picklable dict.

        This is how a forked shard worker ships its post-run pipeline
        state back to the parent process (queue *items* are excluded —
        the batched path never retains them, and packets need not be
        picklable).  ``restore_state`` is the inverse.
        """
        return {
            "stats": dict(self.stats),
            "registers": {
                name: getattr(self.accumulator, name).values.copy()
                for name in self._REGISTER_NAMES
            },
            "parser_packets": self.parser.packets_parsed,
            "tables": [
                (table.lookups, table.misses, [e.hits for e in table.entries])
                for table in (*self.preprocess_tables, *self.postprocess_tables)
            ],
            "queues": [
                (queue.drops, queue.high_watermark)
                for queue in (self.ml_queue, self.bypass_queue)
            ],
            "arbiter_turn": self.arbiter._turn,
            "block": self._block_state(),
        }

    def _block_state(self) -> dict | None:
        """The attached block's mutable counters, as a picklable dict."""
        if self.block is None:
            return None
        return {
            "next_issue_cycle": self.block._next_issue_cycle,
            "packets_processed": self.block.packets_processed,
            "reconfigurations": self.block.reconfigurations,
            "reconfig_cycles": self.block.reconfig_cycles,
            # Graphs hold closures and cannot cross the pipe, so the
            # resident program travels as "is it mine?" — the owning
            # pipeline re-installs it on restore.
            "program_resident": (
                self.program is not None and self.block.graph is self.program
            ),
        }

    def _restore_block(self, block_state: dict | None) -> None:
        """Install a :meth:`_block_state` payload onto the local block."""
        if self.block is None or block_state is None:
            return
        if (
            block_state["program_resident"]
            and self.program is not None
            and self.block.graph is not self.program
        ):
            # Re-install the program the (forked) twin left resident, so
            # later runs model reconfigurations identically across
            # executors.  The counter restore below overwrites the swap
            # this bookkeeping install records.
            self.block.reconfigure(self.program)
        self.block._next_issue_cycle = block_state["next_issue_cycle"]
        self.block.packets_processed = block_state["packets_processed"]
        self.block.reconfigurations = block_state["reconfigurations"]
        self.block.reconfig_cycles = block_state["reconfig_cycles"]

    def restore_state(self, snapshot: dict) -> None:
        """Install a :meth:`state_snapshot` taken from this pipeline's twin."""
        self.stats.update(snapshot["stats"])
        for name, values in snapshot["registers"].items():
            getattr(self.accumulator, name).values[:] = values
        self.parser.packets_parsed = snapshot["parser_packets"]
        tables = (*self.preprocess_tables, *self.postprocess_tables)
        if len(tables) != len(snapshot["tables"]):
            raise ValueError("snapshot does not match this pipeline's tables")
        for table, (lookups, misses, hits) in zip(tables, snapshot["tables"]):
            table.lookups = lookups
            table.misses = misses
            for entry, entry_hits in zip(table.entries, hits):
                entry.hits = entry_hits
        for queue, (drops, high_watermark) in zip(
            (self.ml_queue, self.bypass_queue), snapshot["queues"]
        ):
            queue.drops = drops
            queue.high_watermark = high_watermark
        self.arbiter._turn = snapshot["arbiter_turn"]
        self._restore_block(snapshot["block"])

    # ------------------------------------------------------------------
    # Incremental state transport (persistent shard pools)
    # ------------------------------------------------------------------
    def state_delta(self, base: dict) -> dict:
        """Sparse diff of the current state against a prior snapshot.

        A persistent pool worker ships its state *per chunk* rather than
        once per run; a full :meth:`state_snapshot` per chunk would copy
        every register array (the accumulator holds 64k slots by
        default), so this returns only what moved since ``base`` — the
        register slots whose values changed (index/value pairs), counter
        increments, and the handful of small absolute fields (arbiter
        turn, queue watermarks, block clock).  ``base`` — a
        :meth:`state_snapshot` dict — is **updated in place** to the
        current state, so the worker calls this once per chunk and every
        message stays bounded by the chunk's own footprint.
        :meth:`apply_state_delta` is the inverse.
        """
        registers: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        for name in self._REGISTER_NAMES:
            current = getattr(self.accumulator, name).values
            prior = base["registers"][name]
            changed = np.flatnonzero(current != prior)
            if len(changed):
                values = current[changed].copy()
                registers[name] = (changed, values)
                prior[changed] = values
        stats: dict[str, int] = {}
        for key, value in self.stats.items():
            moved = value - base["stats"].get(key, 0)
            if moved:
                stats[key] = moved
                base["stats"][key] = value
        tables: list[tuple[int, int, list[int]]] = []
        for t, table in enumerate(
            (*self.preprocess_tables, *self.postprocess_tables)
        ):
            prior_lookups, prior_misses, prior_hits = base["tables"][t]
            hits = [entry.hits for entry in table.entries]
            tables.append(
                (
                    table.lookups - prior_lookups,
                    table.misses - prior_misses,
                    [now - before for now, before in zip(hits, prior_hits)],
                )
            )
            base["tables"][t] = (table.lookups, table.misses, hits)
        queues: list[tuple[int, int]] = []
        for q, queue in enumerate((self.ml_queue, self.bypass_queue)):
            prior_drops, __ = base["queues"][q]
            queues.append((queue.drops - prior_drops, queue.high_watermark))
            base["queues"][q] = (queue.drops, queue.high_watermark)
        parser_moved = self.parser.packets_parsed - base["parser_packets"]
        base["parser_packets"] = self.parser.packets_parsed
        base["arbiter_turn"] = self.arbiter._turn
        block_state = self._block_state()
        base["block"] = block_state
        return {
            "stats": stats,
            "registers": registers,
            "parser_packets": parser_moved,
            "tables": tables,
            "queues": queues,
            "arbiter_turn": self.arbiter._turn,
            "block": block_state,
        }

    def apply_state_delta(self, delta: dict) -> None:
        """Fold a worker's :meth:`state_delta` into this pipeline.

        Counters add, changed register slots overwrite, and the small
        absolute fields (arbiter turn, watermarks, block clock) install
        directly — applying a run's deltas in chunk order leaves this
        pipeline exactly where the worker's twin ended up.
        """
        for key, moved in delta["stats"].items():
            self.stats[key] = self.stats.get(key, 0) + moved
        for name, (indices, values) in delta["registers"].items():
            getattr(self.accumulator, name).values[indices] = values
        self.parser.packets_parsed += delta["parser_packets"]
        tables = (*self.preprocess_tables, *self.postprocess_tables)
        if len(tables) != len(delta["tables"]):
            raise ValueError("delta does not match this pipeline's tables")
        for table, (lookups, misses, hits) in zip(tables, delta["tables"]):
            table.lookups += lookups
            table.misses += misses
            for entry, entry_hits in zip(table.entries, hits):
                entry.hits += entry_hits
        for queue, (drops, high_watermark) in zip(
            (self.ml_queue, self.bypass_queue), delta["queues"]
        ):
            queue.drops += drops
            queue.high_watermark = high_watermark
        self.arbiter._turn = delta["arbiter_turn"]
        self._restore_block(delta["block"])

    @property
    def added_latency_ns(self) -> float:
        """Extra latency an ML packet pays vs the bypass path."""
        return 0.0 if self.block is None else self.block.latency_ns
