"""The Taurus data-plane pipeline (Fig. 6).

Parse -> preprocessing MATs -> {MapReduce block | bypass} -> postprocessing
MATs -> scheduler.  Preprocessing decides (as PHV metadata) whether the
packet needs ML; non-ML packets take the bypass sub-queue and incur no
added latency.  A round-robin arbiter merges the two paths in front of the
postprocessing MATs.

Latency accounting: a parsed packet crosses ``n_mat_stages`` single-cycle
MAT stages plus the scheduler (the ~1 us baseline datacenter switch of
Section 5.1.2); ML packets additionally pay the MapReduce block's compiled
latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..hw.grid import MapReduceBlock
from ..hw.params import CLOCK_GHZ
from .actions import Action
from .mat import MatchActionTable
from .packet import Packet
from .parser import Parser, default_layout, default_parser
from .phv import PHV
from .registers import FlowFeatureAccumulator
from .scheduler import PacketQueue, RoundRobinArbiter

__all__ = ["PipelineResult", "TaurusPipeline", "DECISION_FORWARD", "DECISION_DROP", "DECISION_FLAG"]

DECISION_FORWARD = 0
DECISION_FLAG = 1
DECISION_DROP = 2

#: Base one-way latency of the conventional switch stages (parse + MATs +
#: queueing), Section 5.1.2's "datacenter switch latency of 1 us".
BASE_SWITCH_LATENCY_NS = 1000.0


@dataclass
class PipelineResult:
    """Outcome of one packet's transit."""

    packet: Packet
    phv: PHV
    decision: int
    ml_score: float | None
    latency_ns: float
    bypassed: bool


@dataclass
class TaurusPipeline:
    """A programmable switch pipeline with an attached MapReduce block.

    Parameters
    ----------
    block:
        The configured MapReduce block (or None for a plain PISA switch).
    feature_names:
        Names of the dense PHV feature region.
    bypass_predicate:
        Decides from the parsed PHV whether the packet skips ML (default:
        everything goes through ML).
    postprocess:
        Maps the fabric's numeric output to a decision code; default
        thresholds score >= 0.5 as FLAG (the anomaly use case).
    """

    block: MapReduceBlock | None
    feature_names: tuple[str, ...]
    bypass_predicate: Callable[[PHV], bool] = field(default=lambda phv: False)
    postprocess: Callable[[np.ndarray], int] = field(
        default=lambda value: DECISION_FLAG if float(np.atleast_1d(value)[0]) >= 0.5 else DECISION_FORWARD
    )
    parser: Parser = field(init=False)
    preprocess_tables: list[MatchActionTable] = field(default_factory=list)
    postprocess_tables: list[MatchActionTable] = field(default_factory=list)
    accumulator: FlowFeatureAccumulator = field(default_factory=FlowFeatureAccumulator)
    ml_queue: PacketQueue = field(init=False)
    bypass_queue: PacketQueue = field(init=False)
    stats: dict[str, int] = field(
        default_factory=lambda: {"ml": 0, "bypass": 0, "flagged": 0, "dropped": 0}
    )

    def __post_init__(self) -> None:
        layout = default_layout(self.feature_names)
        self.parser = default_parser(layout)
        self.ml_queue = PacketQueue("mapreduce", capacity=8192)
        self.bypass_queue = PacketQueue("bypass", capacity=8192)
        self.arbiter = RoundRobinArbiter([self.ml_queue, self.bypass_queue])

    # ------------------------------------------------------------------
    # Control-plane hooks
    # ------------------------------------------------------------------
    def install_preprocess(self, table: MatchActionTable) -> None:
        self.preprocess_tables.append(table)

    def install_postprocess(self, table: MatchActionTable) -> None:
        self.postprocess_tables.append(table)

    # ------------------------------------------------------------------
    # Per-packet processing
    # ------------------------------------------------------------------
    def process(self, packet: Packet) -> PipelineResult:
        """One packet through parse/preprocess/ML-or-bypass/postprocess."""
        phv = self.parser.parse(packet)

        # Stateful feature accumulation (Section 3.1).
        aggregates = self.accumulator.update(
            packet.five_tuple,
            packet.size_bytes,
            urgent=bool(packet.headers.get("urgent_flag", 0)),
            now_s=packet.arrival_time,
        )
        for key, value in aggregates.items():
            packet.metadata[key] = float(value)

        # Flow-level model features ride in the dense PHV region.
        if packet.features is not None:
            phv.set_features(packet.features)

        for table in self.preprocess_tables:
            table.apply(phv)

        bypass = self.bypass_predicate(phv) or self.block is None
        phv.set("ml_bypass", 1 if bypass else 0)

        ml_score: float | None = None
        if bypass:
            self.bypass_queue.push(packet)
            self.stats["bypass"] += 1
            latency = BASE_SWITCH_LATENCY_NS
            decision = DECISION_FORWARD
        else:
            self.ml_queue.push(packet)
            self.stats["ml"] += 1
            result = self.block.process(phv.feature_vector())
            ml_score = float(np.atleast_1d(result.value)[0])
            phv.set("ml_score", int(abs(ml_score) * 256) & 0xFFFF)
            latency = BASE_SWITCH_LATENCY_NS + result.latency_ns
            decision = self.postprocess(result.value)

        # Postprocessing rules may override the ML decision (safety bounds,
        # Section 3.2).  An explicit write to the PHV's decision field wins.
        phv.values.pop("decision", None)
        for table in self.postprocess_tables:
            table.apply(phv)
        if "decision" in phv.values:
            decision = int(phv.get("decision"))

        if decision == DECISION_DROP:
            self.stats["dropped"] += 1
        elif decision == DECISION_FLAG:
            self.stats["flagged"] += 1
        self.arbiter.select()  # merge point drains one packet per slot

        return PipelineResult(
            packet=packet,
            phv=phv,
            decision=decision,
            ml_score=ml_score,
            latency_ns=latency,
            bypassed=bypass,
        )

    def process_trace(self, packets: list[Packet]) -> list[PipelineResult]:
        """Convenience: run a list of packets in arrival order."""
        return [self.process(p) for p in sorted(packets, key=lambda p: p.arrival_time)]

    @property
    def added_latency_ns(self) -> float:
        """Extra latency an ML packet pays vs the bypass path."""
        return 0.0 if self.block is None else self.block.latency_ns
