"""Preprocessing lookup tables (feature engineering in MATs).

Section 3.1: "Taurus replaces categorical relationships with simpler
numeric relationships using lookup tables; for example, a table transforms
port numbers into a linear likelihood value" and "taking a logarithm of an
exponentially distributed variable results in a uniform distribution, which
an ML model can process with fewer layers."
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["PortLikelihoodTable", "LogTransformTable", "StandardizeTable"]


@dataclass
class PortLikelihoodTable:
    """Port number -> anomaly-likelihood prior, installed by the controller.

    Well-known service ports get low priors; ephemeral/rare ports higher.
    """

    priors: dict[int, float] = field(default_factory=dict)
    default_prior: float = 0.5

    @classmethod
    def from_traffic(cls, ports: np.ndarray, labels: np.ndarray) -> "PortLikelihoodTable":
        """Learn priors from labeled traffic (control-plane training)."""
        ports = np.asarray(ports, dtype=np.int64)
        labels = np.asarray(labels, dtype=np.float64)
        priors = {}
        for port in np.unique(ports):
            mask = ports == port
            priors[int(port)] = float(labels[mask].mean())
        return cls(priors=priors)

    def lookup(self, port: int) -> float:
        return self.priors.get(int(port), self.default_prior)

    @property
    def n_entries(self) -> int:
        return len(self.priors)


@dataclass
class LogTransformTable:
    """Piecewise log2 approximation as an MAT-friendly range table.

    Hardware cannot take logs in an action, but a range-match table over
    value magnitudes emits ``floor(log2(v))`` plus a linear interpolation
    term — enough to uniformize heavy-tailed counters.
    """

    max_bits: int = 32

    def lookup(self, value: float) -> float:
        value = max(float(value), 0.0)
        if value < 1.0:
            return value  # below 1, identity (avoids -inf)
        exponent = int(np.floor(np.log2(value)))
        base = 1 << exponent
        frac = (value - base) / base
        return exponent + frac  # linear-in-segment log2 approximation

    def error_vs_exact(self, values: np.ndarray) -> float:
        """Max abs error against ln -> log2 exact transform (for tests)."""
        values = np.asarray(values, dtype=np.float64)
        approx = np.array([self.lookup(v) for v in values])
        exact = np.where(values >= 1.0, np.log2(np.maximum(values, 1e-12)), values)
        return float(np.max(np.abs(approx - exact)))


@dataclass
class StandardizeTable:
    """Per-feature (x - mean) / std as shift/add MAT actions.

    The controller computes means and scales offline and installs them; the
    data plane applies them per packet so features land in the fixed-point
    format's dynamic range.
    """

    means: np.ndarray
    scales: np.ndarray

    def __post_init__(self) -> None:
        self.means = np.asarray(self.means, dtype=np.float64)
        self.scales = np.asarray(self.scales, dtype=np.float64)
        if self.means.shape != self.scales.shape:
            raise ValueError("means and scales must align")
        if np.any(self.scales == 0):
            raise ValueError("scales must be nonzero")

    @classmethod
    def fit(cls, features: np.ndarray) -> "StandardizeTable":
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        std = features.std(axis=0)
        std[std == 0] = 1.0
        return cls(means=features.mean(axis=0), scales=std)

    def apply(self, features: np.ndarray) -> np.ndarray:
        return (np.asarray(features, dtype=np.float64) - self.means) / self.scales
