"""Packet scheduling: PIFO and the bypass-path round-robin arbiter.

Postprocessing "connects inference to scheduling, which uses abstractions
like PIFO to support a variety of scheduling algorithms" (Section 3.2); the
modified pipeline splits the packet queue into sub-queues with "a
round-robin (RR) selector arbitrat[ing] which path to connect to the
postprocessing MATs" (Fig. 6).
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any

__all__ = ["PIFO", "PacketQueue", "RoundRobinArbiter"]


class PIFO:
    """A push-in first-out queue: enqueue with a rank, dequeue smallest.

    Ties break by arrival order, which keeps equal-rank packets FIFO (the
    property Sivaraman et al.'s hardware design guarantees).
    """

    def __init__(self, capacity: int = 65536):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._heap: list[tuple[float, int, Any]] = []
        self._counter = itertools.count()
        self.drops = 0

    def push(self, item: Any, rank: float) -> bool:
        """Enqueue; returns False (tail-drop) when full."""
        if len(self._heap) >= self.capacity:
            self.drops += 1
            return False
        heapq.heappush(self._heap, (rank, next(self._counter), item))
        return True

    def pop(self) -> Any:
        if not self._heap:
            raise IndexError("pop from empty PIFO")
        return heapq.heappop(self._heap)[2]

    def __len__(self) -> int:
        return len(self._heap)

    def peek_rank(self) -> float:
        if not self._heap:
            raise IndexError("peek on empty PIFO")
        return self._heap[0][0]


@dataclass
class PacketQueue:
    """A bounded FIFO sub-queue (per pipeline block, Fig. 6).

    Backed by a :class:`collections.deque`: a full-trace drain pops from
    the head once per packet, and ``list.pop(0)`` would make that O(N^2)
    over a multi-hundred-thousand-packet trace.  ``drops`` and
    ``high_watermark`` semantics are unchanged (and remain what
    :meth:`~repro.pisa.TaurusPipeline.state_snapshot` carries).
    """

    name: str
    capacity: int = 4096
    items: deque = field(default_factory=deque)
    drops: int = 0
    high_watermark: int = 0

    def push(self, item: Any) -> bool:
        if len(self.items) >= self.capacity:
            self.drops += 1
            return False
        self.items.append(item)
        self.high_watermark = max(self.high_watermark, len(self.items))
        return True

    def pop(self) -> Any:
        return self.items.popleft()  # IndexError on empty, like list.pop(0)

    def __len__(self) -> int:
        return len(self.items)


class RoundRobinArbiter:
    """Round-robin selection across the ML and bypass queues."""

    def __init__(self, queues: list[PacketQueue]):
        if not queues:
            raise ValueError("arbiter needs at least one queue")
        self.queues = queues
        self._turn = 0

    def select(self) -> Any | None:
        """Pop from the next non-empty queue in RR order (None if all empty)."""
        for offset in range(len(self.queues)):
            queue = self.queues[(self._turn + offset) % len(self.queues)]
            if len(queue):
                self._turn = (self._turn + offset + 1) % len(self.queues)
                return queue.pop()
        return None

    def drain(self) -> list[Any]:
        """Pop until all queues are empty (preserving RR interleave)."""
        out = []
        while True:
            item = self.select()
            if item is None:
                return out
            out.append(item)
