"""Packets as the switch sees them.

A :class:`Packet` carries parsed-header fields, a payload length, and
per-switch metadata.  Ground-truth labels from the dataset ride along for
scoring only — the data plane never reads them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Packet", "from_record"]


@dataclass
class Packet:
    """One packet entering the pipeline."""

    headers: dict[str, int | float] = field(default_factory=dict)
    payload_len: int = 0
    arrival_time: float = 0.0
    metadata: dict[str, float] = field(default_factory=dict)
    features: np.ndarray | None = None
    truth_label: int | None = None
    flow_id: int | None = None

    @property
    def five_tuple(self) -> tuple:
        h = self.headers
        return (
            h.get("src_ip", 0),
            h.get("dst_ip", 0),
            h.get("src_port", 0),
            h.get("dst_port", 0),
            h.get("protocol", 0),
        )

    @property
    def size_bytes(self) -> int:
        # Ethernet + IP + TCP/UDP headers plus the payload.
        return 14 + 20 + 20 + self.payload_len


def from_record(record) -> Packet:
    """Build a :class:`Packet` from a dataset
    :class:`~repro.datasets.packets.PacketRecord`."""
    src_ip, dst_ip, src_port, dst_port, proto = record.five_tuple
    return Packet(
        headers={
            "src_ip": src_ip,
            "dst_ip": dst_ip,
            "src_port": src_port,
            "dst_port": dst_port,
            "protocol": proto,
            "urgent_flag": 0,
            "seq": record.seq_in_flow,
        },
        payload_len=max(0, record.size_bytes - 54),
        arrival_time=record.time,
        features=record.features,
        truth_label=record.label,
        flow_id=record.flow_id,
    )
