"""PISA switch substrate: parser, PHV, MATs, registers, scheduler, pipeline."""

from .actions import MAX_OPS_PER_STAGE, Action, Primitive
from .mat import MatchActionTable, MatchKind, TableEntry
from .packet import Packet, from_record
from .parser import Parser, ParseState, default_layout, default_parser
from .phv import PHV, PHVBatch, PHVLayout, PHVRow
from .pipeline import (
    DECISION_DROP,
    DECISION_FLAG,
    DECISION_FORWARD,
    DEFAULT_TRACE_CHUNK,
    PipelineResult,
    TaurusPipeline,
    TracePipelineResult,
    port_bypass,
    threshold_postprocess,
)
from .registers import FlowFeatureAccumulator, RegisterArray, fnv1a_columns
from .scheduler import PIFO, PacketQueue, RoundRobinArbiter
from .tables import LogTransformTable, PortLikelihoodTable, StandardizeTable

__all__ = [
    "MAX_OPS_PER_STAGE",
    "Action",
    "Primitive",
    "MatchActionTable",
    "MatchKind",
    "TableEntry",
    "Packet",
    "from_record",
    "Parser",
    "ParseState",
    "default_layout",
    "default_parser",
    "PHV",
    "PHVBatch",
    "PHVLayout",
    "PHVRow",
    "DECISION_DROP",
    "DECISION_FLAG",
    "DECISION_FORWARD",
    "DEFAULT_TRACE_CHUNK",
    "PipelineResult",
    "TaurusPipeline",
    "TracePipelineResult",
    "port_bypass",
    "threshold_postprocess",
    "FlowFeatureAccumulator",
    "RegisterArray",
    "fnv1a_columns",
    "PIFO",
    "PacketQueue",
    "RoundRobinArbiter",
    "LogTransformTable",
    "PortLikelihoodTable",
    "StandardizeTable",
]
