"""Stateful registers: cross-packet, cross-flow feature accumulation.

Section 3.1: "We use stateful elements (i.e., registers) of the
switch-processing pipeline to aggregate features across packets and across
flows" — e.g. counting urgent flags or tracking connection duration.  A
register array is indexed by a hash of the flow key (as real switches do),
so collisions are possible and modeled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["RegisterArray", "FlowFeatureAccumulator", "fnv1a_columns"]


def _fnv1a(key: tuple) -> int:
    """FNV-1a over the flow key's integer components (deterministic)."""
    acc = 0xCBF29CE484222325
    for part in key:
        for byte in int(part).to_bytes(8, "little", signed=False):
            acc ^= byte
            acc = (acc * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return acc


def fnv1a_columns(columns) -> np.ndarray:
    """Vectorized :func:`_fnv1a` over N keys given as per-component columns.

    ``columns`` is a sequence of arrays (one per key component, aligned by
    row); returns a uint64 hash per row, bit-identical to hashing each
    row's tuple with the scalar function.  uint64 arithmetic wraps mod
    2**64, matching the scalar mask.
    """
    columns = [np.asarray(col) for col in columns]
    n = len(columns[0]) if columns else 0
    acc = np.full(n, 0xCBF29CE484222325, dtype=np.uint64)
    prime = np.uint64(0x100000001B3)
    byte_mask = np.uint64(0xFF)
    for col in columns:
        c = col.astype(np.uint64)
        for shift in range(0, 64, 8):  # little-endian byte order
            acc = (acc ^ ((c >> np.uint64(shift)) & byte_mask)) * prime
    return acc


@dataclass
class RegisterArray:
    """A fixed-size array of saturating counters/accumulators."""

    size: int
    width_bits: int = 32
    values: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError("size must be positive")
        self.values = np.zeros(self.size, dtype=np.int64)

    @property
    def max_value(self) -> int:
        return (1 << self.width_bits) - 1

    def index_of(self, key: tuple) -> int:
        return _fnv1a(key) % self.size

    def read(self, key: tuple) -> int:
        return int(self.values[self.index_of(key)])

    def add(self, key: tuple, amount: int = 1) -> int:
        """Saturating add; returns the new value."""
        idx = self.index_of(key)
        self.values[idx] = min(self.values[idx] + amount, self.max_value)
        return int(self.values[idx])

    def write(self, key: tuple, value: int) -> None:
        self.values[self.index_of(key)] = min(int(value), self.max_value)

    def index_columns(self, columns) -> np.ndarray:
        """Vectorized :meth:`index_of`: one slot index per key row."""
        return (fnv1a_columns(columns) % np.uint64(self.size)).astype(np.int64)

    def clear(self) -> None:
        self.values[:] = 0


@dataclass
class FlowFeatureAccumulator:
    """Per-flow running features maintained by preprocessing MATs.

    Tracks the aggregates the anomaly pipeline needs: packet count, byte
    count, urgent-flag count, and first-seen time (for duration).
    """

    slots: int = 65536
    packet_count: RegisterArray = field(init=False)
    byte_count: RegisterArray = field(init=False)
    urgent_count: RegisterArray = field(init=False)
    first_seen_ms: RegisterArray = field(init=False)

    def __post_init__(self) -> None:
        self.packet_count = RegisterArray(self.slots)
        self.byte_count = RegisterArray(self.slots, width_bits=48)
        self.urgent_count = RegisterArray(self.slots)
        self.first_seen_ms = RegisterArray(self.slots, width_bits=48)

    def update(self, five_tuple: tuple, size_bytes: int, urgent: bool, now_s: float) -> dict:
        """Apply one packet; returns the flow's current aggregates."""
        now_ms = int(now_s * 1e3)
        if self.packet_count.read(five_tuple) == 0:
            self.first_seen_ms.write(five_tuple, now_ms)
        pkts = self.packet_count.add(five_tuple)
        size = self.byte_count.add(five_tuple, size_bytes)
        urg = self.urgent_count.add(five_tuple, 1 if urgent else 0)
        duration_ms = now_ms - self.first_seen_ms.read(five_tuple)
        return {
            "flow_pkts": pkts,
            "flow_bytes": size,
            "flow_urgent": urg,
            "flow_duration_ms": duration_ms,
        }

    def update_batch(
        self,
        key_columns,
        sizes: np.ndarray,
        urgent: np.ndarray,
        times: np.ndarray,
    ) -> dict[str, np.ndarray]:
        """Apply ``N`` packets in order; returns per-packet aggregates.

        Bit-identical to ``N`` sequential :meth:`update` calls — including
        hash collisions (keys landing on one slot share its registers) and
        per-step saturation, which for these non-negative increments
        reduces to clipping a within-slot running sum.  Packets are grouped
        by register slot with a stable sort, so arrival order is respected
        inside every slot.

        Parameters
        ----------
        key_columns:
            Sequence of arrays, one per five-tuple component.
        sizes:
            Per-packet byte counts (non-negative).
        urgent:
            Per-packet urgent-flag booleans.
        times:
            Per-packet arrival times in seconds.
        """
        sizes = np.asarray(sizes, dtype=np.int64)
        n = len(sizes)
        if n == 0:
            empty = np.zeros(0, dtype=np.int64)
            return {
                "flow_pkts": empty,
                "flow_bytes": empty.copy(),
                "flow_urgent": empty.copy(),
                "flow_duration_ms": empty.copy(),
            }
        urgent_amt = np.asarray(urgent, dtype=bool).astype(np.int64)
        now_ms = (np.asarray(times, dtype=np.float64) * 1e3).astype(np.int64)
        # All four arrays share the slot count, hence the slot index.
        idx = self.packet_count.index_columns(key_columns)

        # Group packets by slot, preserving arrival order within a slot.
        order = np.argsort(idx, kind="stable")
        sidx = idx[order]
        starts = np.ones(n, dtype=bool)
        starts[1:] = sidx[1:] != sidx[:-1]
        seg_first = np.flatnonzero(starts)             # first position per slot
        seg_id = np.cumsum(starts) - 1
        first_of = seg_first[seg_id]                   # segment start, per position
        rank = np.arange(n, dtype=np.int64) - first_of  # 0-based within slot

        slots = sidx[seg_first]
        init_pkts = self.packet_count.values[slots][seg_id]
        init_bytes = self.byte_count.values[slots][seg_id]
        init_urgent = self.urgent_count.values[slots][seg_id]

        def running(amounts: np.ndarray, init: np.ndarray, reg: RegisterArray):
            csum = np.cumsum(amounts)
            before_segment = csum[first_of] - amounts[first_of]
            return np.minimum(init + (csum - before_segment), reg.max_value)

        pkts = np.minimum(init_pkts + rank + 1, self.packet_count.max_value)
        bytes_run = running(sizes[order], init_bytes, self.byte_count)
        urgent_run = running(urgent_amt[order], init_urgent, self.urgent_count)

        # First-seen: set by the first packet of a slot whose pre-batch
        # packet count is zero (saturating write, as the scalar path does).
        now_sorted = now_ms[order]
        fresh = self.packet_count.values[slots] == 0
        fs_per_slot = np.where(
            fresh,
            np.minimum(now_sorted[seg_first], self.first_seen_ms.max_value),
            self.first_seen_ms.values[slots],
        )
        first_seen = fs_per_slot[seg_id]
        duration = now_sorted - first_seen

        # Write the per-slot final state back into the register arrays.
        seg_last = np.append(seg_first[1:] - 1, n - 1)
        self.packet_count.values[slots] = pkts[seg_last]
        self.byte_count.values[slots] = bytes_run[seg_last]
        self.urgent_count.values[slots] = urgent_run[seg_last]
        self.first_seen_ms.values[slots] = fs_per_slot

        def unsort(values: np.ndarray) -> np.ndarray:
            out = np.empty(n, dtype=np.int64)
            out[order] = values
            return out

        return {
            "flow_pkts": unsort(pkts),
            "flow_bytes": unsort(bytes_run),
            "flow_urgent": unsort(urgent_run),
            "flow_duration_ms": unsort(duration),
        }
