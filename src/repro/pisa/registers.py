"""Stateful registers: cross-packet, cross-flow feature accumulation.

Section 3.1: "We use stateful elements (i.e., registers) of the
switch-processing pipeline to aggregate features across packets and across
flows" — e.g. counting urgent flags or tracking connection duration.  A
register array is indexed by a hash of the flow key (as real switches do),
so collisions are possible and modeled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["RegisterArray", "FlowFeatureAccumulator"]


def _fnv1a(key: tuple) -> int:
    """FNV-1a over the flow key's integer components (deterministic)."""
    acc = 0xCBF29CE484222325
    for part in key:
        for byte in int(part).to_bytes(8, "little", signed=False):
            acc ^= byte
            acc = (acc * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return acc


@dataclass
class RegisterArray:
    """A fixed-size array of saturating counters/accumulators."""

    size: int
    width_bits: int = 32
    values: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError("size must be positive")
        self.values = np.zeros(self.size, dtype=np.int64)

    @property
    def max_value(self) -> int:
        return (1 << self.width_bits) - 1

    def index_of(self, key: tuple) -> int:
        return _fnv1a(key) % self.size

    def read(self, key: tuple) -> int:
        return int(self.values[self.index_of(key)])

    def add(self, key: tuple, amount: int = 1) -> int:
        """Saturating add; returns the new value."""
        idx = self.index_of(key)
        self.values[idx] = min(self.values[idx] + amount, self.max_value)
        return int(self.values[idx])

    def write(self, key: tuple, value: int) -> None:
        self.values[self.index_of(key)] = min(int(value), self.max_value)

    def clear(self) -> None:
        self.values[:] = 0


@dataclass
class FlowFeatureAccumulator:
    """Per-flow running features maintained by preprocessing MATs.

    Tracks the aggregates the anomaly pipeline needs: packet count, byte
    count, urgent-flag count, and first-seen time (for duration).
    """

    slots: int = 65536
    packet_count: RegisterArray = field(init=False)
    byte_count: RegisterArray = field(init=False)
    urgent_count: RegisterArray = field(init=False)
    first_seen_ms: RegisterArray = field(init=False)

    def __post_init__(self) -> None:
        self.packet_count = RegisterArray(self.slots)
        self.byte_count = RegisterArray(self.slots, width_bits=48)
        self.urgent_count = RegisterArray(self.slots)
        self.first_seen_ms = RegisterArray(self.slots, width_bits=48)

    def update(self, five_tuple: tuple, size_bytes: int, urgent: bool, now_s: float) -> dict:
        """Apply one packet; returns the flow's current aggregates."""
        now_ms = int(now_s * 1e3)
        if self.packet_count.read(five_tuple) == 0:
            self.first_seen_ms.write(five_tuple, now_ms)
        pkts = self.packet_count.add(five_tuple)
        size = self.byte_count.add(five_tuple, size_bytes)
        urg = self.urgent_count.add(five_tuple, 1 if urgent else 0)
        duration_ms = now_ms - self.first_seen_ms.read(five_tuple)
        return {
            "flow_pkts": pkts,
            "flow_bytes": size,
            "flow_urgent": urg,
            "flow_duration_ms": duration_ms,
        }
