"""VLIW actions executed by match-action stages.

A MAT stage issues a small number of parallel primitive operations on PHV
fields — Tofino executes "12 operations per stage: four of each of 8, 16,
and 32 bits" (Section 2.1.1).  We model an :class:`Action` as a bounded
list of primitives and enforce the per-stage issue width, which is exactly
the constraint that makes MAT-only ML expensive (Section 5.1.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .phv import PHV, PHVBatch

__all__ = ["Primitive", "Action", "MAX_OPS_PER_STAGE"]

#: Tofino-like issue width per MAT stage.
MAX_OPS_PER_STAGE = 12


@dataclass(frozen=True)
class Primitive:
    """One VLIW slot: dst <- fn(PHV).  ``fn`` returns the new value.

    ``batch_fn`` is the optional vectorized twin used by the batched
    pipeline: called with ``(batch, mask)`` it returns the new values for
    the selected rows (a scalar, a full-length column, or one value per
    selected row).  Without it the batched path falls back to calling
    ``fn`` once per selected row on a :class:`~repro.pisa.phv.PHVRow`
    view — correct, just slower.
    """

    dst: str
    fn: Callable[[PHV], float]
    note: str = ""
    batch_fn: Callable[[PHVBatch, np.ndarray], np.ndarray | float] | None = None


@dataclass
class Action:
    """A named bundle of primitives applied atomically to a PHV."""

    name: str
    primitives: list[Primitive] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.primitives) > MAX_OPS_PER_STAGE:
            raise ValueError(
                f"action {self.name!r} has {len(self.primitives)} ops; "
                f"a stage issues at most {MAX_OPS_PER_STAGE}"
            )

    def apply(self, phv: PHV) -> None:
        # VLIW semantics: all slots read the old PHV, then write together.
        staged = [(p.dst, p.fn(phv)) for p in self.primitives]
        for dst, value in staged:
            if dst in phv.layout.feature_fields:
                phv.values[dst] = float(value)
            else:
                phv.set(dst, value)

    def apply_batch(self, batch: PHVBatch, mask: np.ndarray) -> None:
        """Apply to every selected row of a batch, with VLIW semantics.

        All slots are evaluated against the pre-action columns before any
        write lands, exactly as :meth:`apply` stages scalar slots.
        """
        if not self.primitives or not mask.any():
            return
        staged = []
        for p in self.primitives:
            if p.batch_fn is not None:
                values = p.batch_fn(batch, mask)
            else:
                rows = np.flatnonzero(mask)
                values = np.array(
                    [p.fn(batch.row(i)) for i in rows], dtype=np.float64
                )
            staged.append((p.dst, values))
        for dst, values in staged:
            batch.set_column(dst, values, where=mask)

    @staticmethod
    def set_const(name: str, dst: str, value: float) -> "Action":
        return Action(
            name,
            [
                Primitive(
                    dst,
                    lambda phv, v=value: v,
                    f"{dst}={value}",
                    batch_fn=lambda batch, mask, v=value: v,
                )
            ],
        )

    @staticmethod
    def noop(name: str = "noop") -> "Action":
        return Action(name, [])
