"""Programmable packet parser (parse graph -> PHV).

PISA parsers walk a state machine, extracting header fields into the PHV
(Gibb et al., "Design principles for packet parsers").  We model the parse
graph explicitly: states extract fields and branch on a select field.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from .packet import Packet
from .phv import PHV, PHVBatch, PHVLayout

__all__ = ["ParseState", "Parser", "default_layout", "default_parser"]


@dataclass
class ParseState:
    """One parser state: extract fields, then branch on a select field."""

    name: str
    extracts: list[str] = field(default_factory=list)
    select: str | None = None
    transitions: dict[int, str] = field(default_factory=dict)
    default_next: str | None = None  # None terminates parsing


class Parser:
    """A parse graph executed per packet.

    Parameters
    ----------
    layout:
        PHV layout fields are extracted into.
    states:
        Parse states, keyed by name; parsing starts at ``start``.
    """

    def __init__(self, layout: PHVLayout, states: dict[str, ParseState], start: str = "start"):
        if start not in states:
            raise ValueError(f"missing start state {start!r}")
        for state in states.values():
            for target in list(state.transitions.values()) + (
                [state.default_next] if state.default_next else []
            ):
                if target is not None and target not in states:
                    raise ValueError(f"transition to unknown state {target!r}")
        self.layout = layout
        self.states = states
        self.start = start
        self.packets_parsed = 0

    def parse(self, packet: Packet) -> PHV:
        """Walk the parse graph, producing the packet's PHV."""
        phv = PHV(self.layout)
        state_name: str | None = self.start
        visited = 0
        while state_name is not None:
            visited += 1
            if visited > len(self.states) + 1:
                raise RuntimeError("parse graph loop detected")
            state = self.states[state_name]
            for fname in state.extracts:
                phv.set(fname, packet.headers.get(fname, 0))
            if state.select is not None:
                key = int(packet.headers.get(state.select, 0))
                state_name = state.transitions.get(key, state.default_next)
            else:
                state_name = state.default_next
        phv.set("payload_len", packet.payload_len)
        self.packets_parsed += 1
        return phv

    def parse_batch(
        self, headers: dict[str, np.ndarray], payload_len: np.ndarray
    ) -> PHVBatch:
        """Parse ``N`` packets at once from columnar header fields.

        Instead of walking the state machine once per packet, the parse
        graph is evaluated once per *reachable (state, packet-subset)*
        pair: each worklist item carries a boolean mask of the packets
        currently in that state, extraction is a masked column copy, and a
        select fans the mask out per distinct transition value.  Results
        are bit-identical to :meth:`parse` per packet — including the loop
        guard, which trips when any packet revisits more states than the
        graph has.
        """
        n = len(payload_len)
        batch = PHVBatch(self.layout, n)
        if n == 0:
            self.packets_parsed += 0
            return batch

        def column(name: str) -> np.ndarray:
            col = headers.get(name)
            if col is None:
                return np.zeros(n, dtype=np.int64)
            return col if col.dtype == np.int64 else col.astype(np.int64)

        visited = np.zeros(n, dtype=np.int64)
        limit = len(self.states) + 1
        work: deque[tuple[str, np.ndarray]] = deque(
            [(self.start, np.ones(n, dtype=bool))]
        )
        while work:
            state_name, mask = work.popleft()
            visited[mask] += 1
            if visited[mask].max() > limit:
                raise RuntimeError("parse graph loop detected")
            state = self.states[state_name]
            for fname in state.extracts:
                batch.set_column(fname, column(fname), where=mask)
            if state.select is not None:
                key = column(state.select)
                remaining = mask.copy()
                for value, target in state.transitions.items():
                    sub = remaining & (key == value)
                    if sub.any():
                        remaining &= ~sub
                        if target is not None:
                            work.append((target, sub))
                if state.default_next is not None and remaining.any():
                    work.append((state.default_next, remaining))
            elif state.default_next is not None:
                work.append((state.default_next, mask))
        batch.set_column("payload_len", payload_len)
        self.packets_parsed += n
        return batch


def default_layout(feature_names: tuple[str, ...]) -> PHVLayout:
    """The standard Taurus PHV: 5-tuple + flags + a dense feature region."""
    header_fields = (
        ("src_ip", 32),
        ("dst_ip", 32),
        ("src_port", 16),
        ("dst_port", 16),
        ("protocol", 8),
        ("urgent_flag", 1),
        ("seq", 32),
        ("payload_len", 16),
        ("ml_bypass", 1),
        ("ml_score", 16),
        ("decision", 2),
    )
    feature_fields = tuple((name, 8) for name in feature_names)
    return PHVLayout(
        fields=header_fields + feature_fields,
        feature_fields=feature_names,
    )


def default_parser(layout: PHVLayout) -> Parser:
    """Ethernet -> IPv4 -> {TCP, UDP} parse graph."""
    states = {
        "start": ParseState(
            name="start",
            extracts=["src_ip", "dst_ip", "protocol"],
            select="protocol",
            transitions={0: "tcp", 1: "udp"},
            default_next="accept",
        ),
        "tcp": ParseState(
            name="tcp",
            extracts=["src_port", "dst_port", "urgent_flag", "seq"],
            default_next="accept",
        ),
        "udp": ParseState(
            name="udp",
            extracts=["src_port", "dst_port"],
            default_next="accept",
        ),
        "accept": ParseState(name="accept"),
    }
    return Parser(layout, states)
