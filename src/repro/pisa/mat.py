"""Match-action tables.

The workhorse of PISA pipelines: a key built from PHV fields is matched
(exact / ternary / LPM / range) against installed entries; the winning
entry's action runs in the stage's VLIW slots.  Flow-rule installation is
the control plane's (slow) interface to the data plane — the baseline path
Taurus's weight updates replace.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .actions import Action
from .phv import PHV

__all__ = ["MatchKind", "TableEntry", "MatchActionTable"]


class MatchKind:
    EXACT = "exact"
    TERNARY = "ternary"
    LPM = "lpm"
    RANGE = "range"

    ALL = (EXACT, TERNARY, LPM, RANGE)


@dataclass
class TableEntry:
    """One installed flow rule.

    ``match`` maps field name -> match spec:
      exact: value | ternary: (value, mask) | lpm: (prefix, length) |
      range: (lo, hi) inclusive.
    """

    match: dict[str, object]
    action: Action
    priority: int = 0
    hits: int = 0


@dataclass
class MatchActionTable:
    """A single MAT with a declared match key and bounded capacity."""

    name: str
    key_fields: tuple[str, ...]
    kind: str = MatchKind.EXACT
    max_entries: int = 4096
    default_action: Action = field(default_factory=Action.noop)
    entries: list[TableEntry] = field(default_factory=list)
    lookups: int = 0
    misses: int = 0

    def __post_init__(self) -> None:
        if self.kind not in MatchKind.ALL:
            raise ValueError(f"unknown match kind {self.kind!r}")
        if not self.key_fields:
            raise ValueError("a MAT needs at least one key field")

    # ------------------------------------------------------------------
    # Control-plane interface
    # ------------------------------------------------------------------
    def install(self, entry: TableEntry) -> None:
        """Install a rule (raises when the table is full, as TCAMs do)."""
        if len(self.entries) >= self.max_entries:
            raise RuntimeError(f"table {self.name!r} is full ({self.max_entries})")
        missing = set(entry.match) - set(self.key_fields)
        if missing:
            raise ValueError(f"match on non-key fields: {sorted(missing)}")
        self.entries.append(entry)
        # Ternary/range tables order by priority (highest wins).
        self.entries.sort(key=lambda e: -e.priority)

    def remove_all(self) -> int:
        """Flush the table; returns the number of removed entries."""
        n = len(self.entries)
        self.entries.clear()
        return n

    @property
    def occupancy(self) -> int:
        return len(self.entries)

    # ------------------------------------------------------------------
    # Data-plane lookup
    # ------------------------------------------------------------------
    def _matches(self, entry: TableEntry, phv: PHV) -> bool:
        for fname in self.key_fields:
            if fname not in entry.match:
                continue  # wildcard
            value = int(phv.get(fname))
            spec = entry.match[fname]
            if self.kind == MatchKind.EXACT:
                if value != int(spec):  # type: ignore[arg-type]
                    return False
            elif self.kind == MatchKind.TERNARY:
                want, mask = spec  # type: ignore[misc]
                if (value & int(mask)) != (int(want) & int(mask)):
                    return False
            elif self.kind == MatchKind.LPM:
                prefix, length = spec  # type: ignore[misc]
                shift = 32 - int(length)
                if (value >> shift) != (int(prefix) >> shift):
                    return False
            else:  # RANGE
                lo, hi = spec  # type: ignore[misc]
                if not int(lo) <= value <= int(hi):
                    return False
        return True

    def lookup(self, phv: PHV) -> Action:
        """Find the winning entry's action (or the default on a miss)."""
        self.lookups += 1
        for entry in self.entries:
            if self._matches(entry, phv):
                entry.hits += 1
                return entry.action
        self.misses += 1
        return self.default_action

    def apply(self, phv: PHV) -> None:
        """Lookup then run the action — one pipeline stage's work."""
        self.lookup(phv).apply(phv)
