"""Match-action tables.

The workhorse of PISA pipelines: a key built from PHV fields is matched
(exact / ternary / LPM / range) against installed entries; the winning
entry's action runs in the stage's VLIW slots.  Flow-rule installation is
the control plane's (slow) interface to the data plane — the baseline path
Taurus's weight updates replace.

Two lookup paths share the same winner semantics (highest priority, then
installation order):

* the scalar :meth:`MatchActionTable.lookup`, which consults a hash index
  for exact tables and falls back to a priority-ordered scan otherwise;
* the batched :meth:`MatchActionTable.lookup_batch`, which resolves a whole
  :class:`~repro.pisa.phv.PHVBatch` at once — a hash-join over the key
  columns for exact tables, broadcast mask comparisons priority-resolved
  with ``argmax`` for ternary/LPM/range.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

import numpy as np

from .actions import Action
from .phv import PHV, PHVBatch

__all__ = ["MatchKind", "TableEntry", "MatchActionTable"]


class MatchKind:
    EXACT = "exact"
    TERNARY = "ternary"
    LPM = "lpm"
    RANGE = "range"

    ALL = (EXACT, TERNARY, LPM, RANGE)


@dataclass
class TableEntry:
    """One installed flow rule.

    ``match`` maps field name -> match spec:
      exact: value | ternary: (value, mask) | lpm: (prefix, length) |
      range: (lo, hi) inclusive.
    """

    match: dict[str, object]
    action: Action
    priority: int = 0
    hits: int = 0


@dataclass
class MatchActionTable:
    """A single MAT with a declared match key and bounded capacity."""

    name: str
    key_fields: tuple[str, ...]
    kind: str = MatchKind.EXACT
    max_entries: int = 4096
    default_action: Action = field(default_factory=Action.noop)
    entries: list[TableEntry] = field(default_factory=list)
    lookups: int = 0
    misses: int = 0
    #: Exact tables: full-key entry -> position of the winning entry.
    _exact_index: dict[tuple, int] = field(
        default_factory=dict, repr=False, compare=False
    )
    #: Exact tables: positions of entries with wildcarded key fields.
    _partial_positions: list[int] = field(
        default_factory=list, repr=False, compare=False
    )
    #: Index needs rebuilding before the next lookup (set by installs so
    #: bulk rule pushes pay one O(n) rebuild, not one per entry).
    _index_dirty: bool = field(default=True, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in MatchKind.ALL:
            raise ValueError(f"unknown match kind {self.kind!r}")
        if not self.key_fields:
            raise ValueError("a MAT needs at least one key field")
        # Constructor-provided entries may arrive in any order; every
        # lookup path assumes priority order (ties keep given order).
        self.entries.sort(key=lambda e: -e.priority)

    # ------------------------------------------------------------------
    # Control-plane interface
    # ------------------------------------------------------------------
    def install(self, entry: TableEntry) -> None:
        """Install a rule (raises when the table is full, as TCAMs do)."""
        if len(self.entries) >= self.max_entries:
            raise RuntimeError(f"table {self.name!r} is full ({self.max_entries})")
        missing = set(entry.match) - set(self.key_fields)
        if missing:
            raise ValueError(f"match on non-key fields: {sorted(missing)}")
        # Keep entries ordered by priority (highest wins, ties keep
        # installation order) without re-sorting the whole list per insert.
        bisect.insort(self.entries, entry, key=lambda e: -e.priority)
        self._index_dirty = True

    def remove_all(self) -> int:
        """Flush the table; returns the number of removed entries."""
        n = len(self.entries)
        self.entries.clear()
        self._index_dirty = True
        return n

    def _ensure_index(self) -> None:
        """(Re)build the exact-match hash index lazily, once per change."""
        if not self._index_dirty:
            return
        self._exact_index = {}
        self._partial_positions = []
        self._index_dirty = False
        if self.kind != MatchKind.EXACT:
            return
        key_set = set(self.key_fields)
        for pos, entry in enumerate(self.entries):
            if set(entry.match) == key_set:
                key = tuple(int(entry.match[f]) for f in self.key_fields)
                # First (highest-priority) entry for a duplicate key wins.
                self._exact_index.setdefault(key, pos)
            else:
                self._partial_positions.append(pos)

    @property
    def occupancy(self) -> int:
        return len(self.entries)

    # ------------------------------------------------------------------
    # Data-plane lookup
    # ------------------------------------------------------------------
    def _matches(self, entry: TableEntry, phv: PHV) -> bool:
        for fname in self.key_fields:
            if fname not in entry.match:
                continue  # wildcard
            value = int(phv.get(fname))
            spec = entry.match[fname]
            if self.kind == MatchKind.EXACT:
                if value != int(spec):  # type: ignore[arg-type]
                    return False
            elif self.kind == MatchKind.TERNARY:
                want, mask = spec  # type: ignore[misc]
                if (value & int(mask)) != (int(want) & int(mask)):
                    return False
            elif self.kind == MatchKind.LPM:
                prefix, length = spec  # type: ignore[misc]
                shift = 32 - int(length)
                if (value >> shift) != (int(prefix) >> shift):
                    return False
            else:  # RANGE
                lo, hi = spec  # type: ignore[misc]
                if not int(lo) <= value <= int(hi):
                    return False
        return True

    def _find(self, phv: PHV) -> TableEntry | None:
        """The winning entry (lowest position in priority order), if any."""
        if self.kind == MatchKind.EXACT and self.entries:
            self._ensure_index()
            key = tuple(int(phv.get(f)) for f in self.key_fields)
            best = self._exact_index.get(key)
            for pos in self._partial_positions:  # ascending positions
                if best is not None and pos > best:
                    break
                if self._matches(self.entries[pos], phv):
                    best = pos if best is None else min(best, pos)
                    break
            return None if best is None else self.entries[best]
        for entry in self.entries:
            if self._matches(entry, phv):
                return entry
        return None

    def lookup(self, phv: PHV) -> Action:
        """Find the winning entry's action (or the default on a miss)."""
        self.lookups += 1
        entry = self._find(phv)
        if entry is not None:
            entry.hits += 1
            return entry.action
        self.misses += 1
        return self.default_action

    def apply(self, phv: PHV) -> None:
        """Lookup then run the action — one pipeline stage's work."""
        self.lookup(phv).apply(phv)

    # ------------------------------------------------------------------
    # Batched data-plane lookup
    # ------------------------------------------------------------------
    def _winners_exact(self, cols: dict[str, np.ndarray], n: int) -> np.ndarray:
        """Hash-join the batch's key columns against the exact index."""
        winner = np.full(n, -1, dtype=np.int64)
        if self._exact_index:
            keys = np.stack([cols[f] for f in self.key_fields], axis=1)
            uniq, inverse = np.unique(keys, axis=0, return_inverse=True)
            inverse = inverse.reshape(-1)
            upos = np.fromiter(
                (
                    self._exact_index.get(tuple(int(v) for v in row), -1)
                    for row in uniq
                ),
                np.int64,
                len(uniq),
            )
            winner = upos[inverse]
        # Wildcarded entries can still outrank an index hit when they sit
        # earlier in priority order.
        for pos in self._partial_positions:
            entry = self.entries[pos]
            cond = np.ones(n, dtype=bool)
            for fname in self.key_fields:
                if fname in entry.match:
                    cond &= cols[fname] == int(entry.match[fname])  # type: ignore[arg-type]
            better = cond & ((winner < 0) | (pos < winner))
            winner[better] = pos
        return winner

    def _winners_masked(self, cols: dict[str, np.ndarray], n: int) -> np.ndarray:
        """Broadcast mask comparison per entry, priority via ``argmax``."""
        matched = np.ones((len(self.entries), n), dtype=bool)
        for pos, entry in enumerate(self.entries):
            row = matched[pos]
            for fname in self.key_fields:
                if fname not in entry.match:
                    continue  # wildcard
                col = cols[fname]
                spec = entry.match[fname]
                if self.kind == MatchKind.TERNARY:
                    want, mask = spec  # type: ignore[misc]
                    row &= (col & int(mask)) == (int(want) & int(mask))
                elif self.kind == MatchKind.LPM:
                    prefix, length = spec  # type: ignore[misc]
                    shift = 32 - int(length)
                    row &= (col >> shift) == (int(prefix) >> shift)
                else:  # RANGE
                    lo, hi = spec  # type: ignore[misc]
                    row &= (col >= int(lo)) & (col <= int(hi))
        any_hit = matched.any(axis=0)
        # Entries are priority-ordered, so the first matching row wins.
        return np.where(any_hit, matched.argmax(axis=0), np.int64(-1))

    def lookup_batch(self, batch: PHVBatch) -> np.ndarray:
        """Winning entry position per packet (-1 = miss), plus accounting.

        Stat counters (``lookups``/``misses``/per-entry ``hits``) advance
        exactly as ``N`` scalar lookups would.
        """
        n = batch.n
        self.lookups += n
        if not self.entries or n == 0:
            self.misses += n
            return np.full(n, -1, dtype=np.int64)
        cols = {f: batch.int_column(f) for f in self.key_fields}
        if self.kind == MatchKind.EXACT:
            self._ensure_index()
            winner = self._winners_exact(cols, n)
        else:
            winner = self._winners_masked(cols, n)
        hit_positions, counts = np.unique(winner[winner >= 0], return_counts=True)
        for pos, count in zip(hit_positions, counts):
            self.entries[int(pos)].hits += int(count)
        self.misses += int(np.count_nonzero(winner < 0))
        return winner

    def apply_batch(self, batch: PHVBatch) -> None:
        """Batched lookup + grouped action application (one stage's work)."""
        winner = self.lookup_batch(batch)
        for pos in np.unique(winner):
            mask = winner == pos
            action = self.default_action if pos < 0 else self.entries[int(pos)].action
            action.apply_batch(batch, mask)
