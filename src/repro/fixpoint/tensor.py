"""Fixed-point tensors with saturating arithmetic.

A :class:`FixTensor` pairs a raw integer numpy array with its
:class:`~repro.fixpoint.formats.FixedPointFormat`.  All arithmetic is
performed in a wide intermediate type and saturated back to the storage
width, mirroring what the Taurus functional units do per cycle.  This is the
numeric substrate shared by the CGRA simulator and the quantized ML models,
so both see bit-identical results.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .formats import FIX8, FixedPointFormat

__all__ = ["FixTensor"]


class FixTensor:
    """An n-dimensional fixed-point array.

    Construct via :meth:`from_float` (quantizing real values) or
    :meth:`from_raw` (adopting pre-quantized integers).
    """

    __slots__ = ("raw", "fmt")

    def __init__(self, raw: np.ndarray, fmt: FixedPointFormat):
        raw = np.asarray(raw)
        if raw.dtype != fmt.storage_dtype:
            raise TypeError(
                f"raw dtype {raw.dtype} does not match format {fmt.name} "
                f"storage dtype {fmt.storage_dtype}"
            )
        self.raw = raw
        self.fmt = fmt

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_float(
        cls, values: np.ndarray | Iterable[float] | float, fmt: FixedPointFormat = FIX8
    ) -> "FixTensor":
        """Quantize real values into a fixed-point tensor."""
        return cls(fmt.quantize(np.asarray(values, dtype=np.float64)), fmt)

    @classmethod
    def from_raw(cls, raw: np.ndarray, fmt: FixedPointFormat = FIX8) -> "FixTensor":
        """Adopt already-quantized integers (saturating them first)."""
        return cls(fmt.saturate(np.asarray(raw)), fmt)

    @classmethod
    def zeros(cls, shape: tuple[int, ...] | int, fmt: FixedPointFormat = FIX8) -> "FixTensor":
        """All-zeros tensor of the given shape."""
        return cls(np.zeros(shape, dtype=fmt.storage_dtype), fmt)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def to_float(self) -> np.ndarray:
        """Dequantize to float64."""
        return self.fmt.dequantize(self.raw)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.raw.shape

    @property
    def size(self) -> int:
        return int(self.raw.size)

    def reshape(self, *shape: int) -> "FixTensor":
        return FixTensor(self.raw.reshape(*shape), self.fmt)

    def __getitem__(self, idx) -> "FixTensor":
        item = self.raw[idx]
        return FixTensor(np.asarray(item, dtype=self.fmt.storage_dtype), self.fmt)

    def __len__(self) -> int:
        return len(self.raw)

    # ------------------------------------------------------------------
    # Saturating arithmetic (element-wise "map" semantics)
    # ------------------------------------------------------------------
    def _coerce(self, other: "FixTensor | float | int") -> "FixTensor":
        if isinstance(other, FixTensor):
            if other.fmt != self.fmt:
                raise ValueError(
                    f"format mismatch: {self.fmt.name} vs {other.fmt.name}"
                )
            return other
        return FixTensor.from_float(float(other), self.fmt)

    def __add__(self, other: "FixTensor | float | int") -> "FixTensor":
        rhs = self._coerce(other)
        wide = self.raw.astype(self.fmt.wide_dtype) + rhs.raw.astype(self.fmt.wide_dtype)
        return FixTensor(self.fmt.saturate(wide), self.fmt)

    def __sub__(self, other: "FixTensor | float | int") -> "FixTensor":
        rhs = self._coerce(other)
        wide = self.raw.astype(self.fmt.wide_dtype) - rhs.raw.astype(self.fmt.wide_dtype)
        return FixTensor(self.fmt.saturate(wide), self.fmt)

    def __mul__(self, other: "FixTensor | float | int") -> "FixTensor":
        rhs = self._coerce(other)
        wide = self.raw.astype(self.fmt.wide_dtype) * rhs.raw.astype(self.fmt.wide_dtype)
        # Rescale: the product carries 2*frac_bits fractional bits.
        wide = _rounding_shift(wide, self.fmt.frac_bits)
        return FixTensor(self.fmt.saturate(wide), self.fmt)

    def __neg__(self) -> "FixTensor":
        wide = -self.raw.astype(self.fmt.wide_dtype)
        return FixTensor(self.fmt.saturate(wide), self.fmt)

    def maximum(self, other: "FixTensor | float | int") -> "FixTensor":
        rhs = self._coerce(other)
        return FixTensor(np.maximum(self.raw, rhs.raw), self.fmt)

    def minimum(self, other: "FixTensor | float | int") -> "FixTensor":
        rhs = self._coerce(other)
        return FixTensor(np.minimum(self.raw, rhs.raw), self.fmt)

    # ------------------------------------------------------------------
    # Reductions ("reduce" semantics: associative tree reductions)
    # ------------------------------------------------------------------
    def sum(self, axis: int | None = None) -> "FixTensor":
        """Saturating sum; accumulation happens in the wide type.

        Taurus reduces within a CU using a 4-level adder tree over a wide
        accumulator and saturates once at the end, so we accumulate wide and
        saturate once rather than pairwise.
        """
        wide = self.raw.astype(self.fmt.wide_dtype).sum(axis=axis)
        return FixTensor(self.fmt.saturate(np.asarray(wide)), self.fmt)

    def dot(self, other: "FixTensor") -> "FixTensor":
        """Saturating dot product: map (multiply) then reduce (add).

        Products keep full precision inside the wide accumulator; a single
        rounding shift and saturation happen at the end, matching a
        multiply-accumulate datapath with a wide accumulator register.
        """
        rhs = self._coerce(other)
        wide = (
            self.raw.astype(self.fmt.wide_dtype) * rhs.raw.astype(self.fmt.wide_dtype)
        ).sum(axis=-1)
        wide = _rounding_shift(np.asarray(wide), self.fmt.frac_bits)
        return FixTensor(self.fmt.saturate(wide), self.fmt)

    def matvec(self, vector: "FixTensor") -> "FixTensor":
        """Matrix-vector product (the core Taurus inference primitive)."""
        if self.raw.ndim != 2 or vector.raw.ndim != 1:
            raise ValueError("matvec expects a 2-D matrix and a 1-D vector")
        rhs = self._coerce(vector)
        wide = self.raw.astype(self.fmt.wide_dtype) @ rhs.raw.astype(self.fmt.wide_dtype)
        wide = _rounding_shift(wide, self.fmt.frac_bits)
        return FixTensor(self.fmt.saturate(wide), self.fmt)

    def max(self, axis: int | None = None) -> "FixTensor":
        return FixTensor(np.asarray(self.raw.max(axis=axis)), self.fmt)

    def min(self, axis: int | None = None) -> "FixTensor":
        return FixTensor(np.asarray(self.raw.min(axis=axis)), self.fmt)

    def argmax(self, axis: int | None = None) -> np.ndarray:
        return np.asarray(self.raw.argmax(axis=axis))

    def argmin(self, axis: int | None = None) -> np.ndarray:
        return np.asarray(self.raw.argmin(axis=axis))

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FixTensor):
            return NotImplemented
        return self.fmt == other.fmt and np.array_equal(self.raw, other.raw)

    def __hash__(self) -> int:  # pragma: no cover - tensors are not dict keys
        raise TypeError("FixTensor is unhashable")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FixTensor({self.to_float()!r}, fmt={self.fmt.name})"


def _rounding_shift(wide: np.ndarray, bits: int) -> np.ndarray:
    """Arithmetic right shift with round-to-nearest (half away from zero)."""
    if bits == 0:
        return wide
    offset = 1 << (bits - 1)
    # Rounding half away from zero keeps quantization symmetric around 0.
    shifted = np.where(
        wide >= 0,
        (wide + offset) >> bits,
        -((-wide + offset) >> bits),
    )
    return shifted
