"""Fixed-point arithmetic substrate (Taurus's fix8/fix16/fix32 datapath)."""

from .formats import FIX8, FIX16, FIX32, FORMATS_BY_NAME, FixedPointFormat
from .quantize import (
    QuantizedLinear,
    QuantizedModel,
    choose_frac_bits,
    format_for_range,
    quantize_model,
)
from .tensor import FixTensor

__all__ = [
    "FIX8",
    "FIX16",
    "FIX32",
    "FORMATS_BY_NAME",
    "FixedPointFormat",
    "FixTensor",
    "QuantizedLinear",
    "QuantizedModel",
    "choose_frac_bits",
    "format_for_range",
    "quantize_model",
]
