"""Post-training quantization for Taurus models.

The paper quantizes trained float32 models to 8-bit fixed point (Table 3,
"using TensorFlow Lite") and reports negligible accuracy loss.  We implement
the equivalent machinery from scratch:

* :func:`choose_frac_bits` — pick a per-tensor binary point that covers an
  observed value range (symmetric, power-of-two scale, as fixed-point
  hardware requires).
* :class:`QuantizedLinear` — a Dense layer quantized to a given width with
  independent weight/bias/activation formats, evaluated with saturating
  integer arithmetic only.
* :func:`quantize_model` — walk a trained float DNN, calibrate each layer on
  a sample of inputs, and emit a fixed-point executable model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .formats import FixedPointFormat
from .tensor import FixTensor

__all__ = [
    "choose_frac_bits",
    "format_for_range",
    "QuantizedLinear",
    "QuantizedModel",
    "quantize_model",
]


def choose_frac_bits(values: np.ndarray, total_bits: int) -> int:
    """Choose the largest binary point that still covers ``values``.

    The scale is constrained to a power of two (a shift in hardware).  We
    find the smallest number of integer bits that represents
    ``max(|values|)`` without saturation and give every remaining bit to the
    fraction, maximizing resolution.
    """
    peak = float(np.max(np.abs(values))) if np.asarray(values).size else 0.0
    if peak == 0.0:
        return total_bits - 1
    int_bits = max(0, int(np.ceil(np.log2(peak + 1e-12))))
    # Guard: 2**int_bits must be >= peak (log2 rounding can undershoot by ulp).
    while (1 << int_bits) < peak and int_bits < total_bits - 1:
        int_bits += 1
    frac_bits = total_bits - 1 - int_bits
    return max(0, frac_bits)


def format_for_range(
    values: np.ndarray, total_bits: int = 8, name: str | None = None
) -> FixedPointFormat:
    """Build a :class:`FixedPointFormat` calibrated to an observed range."""
    frac = choose_frac_bits(values, total_bits)
    label = name or f"fix{total_bits}"
    return FixedPointFormat(total_bits=total_bits, frac_bits=frac, name=label)


@dataclass
class QuantizedLinear:
    """A Dense layer executed entirely in fixed point.

    ``weights`` is (out, in); the layer computes
    ``act(clip(W @ x + b))`` using integer multiply-accumulate with a
    shift-based requantization step, the same structure the Taurus CU
    executes (map of multiplies, tree reduce, activation map).

    Quantization is per-channel for weights (each output row carries its
    own binary point, as TFLite does for Dense kernels) and per-tensor for
    inputs/outputs.  The accumulator row ``i`` holds
    ``w_frac[i] + in.frac`` fractional bits; a per-row arithmetic shift
    moves it to the output format — per-lane shift amounts are cheap in the
    CU's final stage.
    """

    weights: FixTensor              # nominal per-tensor view (size/format)
    bias: FixTensor                 # quantized in the *output* format
    activation: str                 # "relu", "linear", "sigmoid", "tanh"
    in_fmt: FixedPointFormat
    act_fmt: FixedPointFormat
    w_raw: np.ndarray | None = None    # per-channel storage (int rows)
    w_frac: np.ndarray | None = None   # per-row fractional bits

    def __post_init__(self) -> None:
        if self.w_raw is None:
            # Per-tensor fallback: every row shares the nominal format.
            self.w_raw = self.weights.raw.astype(self.weights.fmt.wide_dtype)
            self.w_frac = np.full(
                self.weights.raw.shape[0], self.weights.fmt.frac_bits, dtype=np.int64
            )

    def linear(self, x: np.ndarray) -> np.ndarray:
        """The layer's pre-activation output (integer MAC + requantize).

        Inputs are quantized to the input format on entry, mirroring the
        PHV -> fabric boundary where preprocessing MATs format features as
        fixed point.  This is exactly what a Taurus ``dot`` node computes,
        so the dataflow-graph execution can share it bit for bit.
        """
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        xq = FixTensor.from_float(x, self.in_fmt)
        wide_t = self.weights.fmt.wide_dtype
        wide = xq.raw.astype(wide_t) @ self.w_raw.astype(wide_t).T
        # Requantize each accumulator row to the output binary point.
        shifts = self.w_frac + self.in_fmt.frac_bits - self.act_fmt.frac_bits
        wide = _rounding_shift_per_column(wide, shifts)
        wide = wide + self.bias.raw.astype(wide_t)
        return self.act_fmt.dequantize(self.act_fmt.saturate(wide))

    def activate(self, pre_activation: np.ndarray) -> np.ndarray:
        """Apply the layer's activation in fixed point (a ``map`` node)."""
        return _apply_activation_fixed(pre_activation, self.activation, self.act_fmt)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Run the layer on a float input batch; returns float outputs."""
        return self.activate(self.linear(x))


def _rounding_shift_per_column(wide: np.ndarray, shifts: np.ndarray) -> np.ndarray:
    """Arithmetic shift (round half away from zero) with per-column amounts.

    Positive shift moves right (divide), negative left (multiply) — both
    are single-cycle barrel-shift operations per lane.
    """
    out = np.empty_like(wide)
    for j, shift in enumerate(np.asarray(shifts, dtype=np.int64)):
        col = wide[..., j]
        if shift > 0:
            offset = 1 << (shift - 1)
            out[..., j] = np.where(
                col >= 0, (col + offset) >> shift, -((-col + offset) >> shift)
            )
        elif shift < 0:
            out[..., j] = col << (-shift)
        else:
            out[..., j] = col
    return out


def _apply_activation_fixed(
    x: np.ndarray, activation: str, fmt: FixedPointFormat
) -> np.ndarray:
    """Apply an activation and re-quantize the result to ``fmt``."""
    if activation == "linear":
        return x
    if activation == "relu":
        return np.maximum(x, 0.0)
    if activation == "leaky_relu":
        return fmt.roundtrip(np.where(x >= 0, x, 0.125 * x))
    if activation == "sigmoid":
        return fmt.roundtrip(1.0 / (1.0 + np.exp(-x)))
    if activation == "tanh":
        return fmt.roundtrip(np.tanh(x))
    if activation == "softmax":
        e = np.exp(x - x.max(axis=-1, keepdims=True))
        return fmt.roundtrip(e / e.sum(axis=-1, keepdims=True))
    raise ValueError(f"unknown activation: {activation}")


@dataclass
class QuantizedModel:
    """A stack of :class:`QuantizedLinear` layers."""

    layers: list[QuantizedLinear] = field(default_factory=list)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        out = np.atleast_2d(np.asarray(x, dtype=np.float64))
        for layer in self.layers:
            out = layer(out)
        return out

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Class prediction by arg-max over the final layer."""
        return self(x).argmax(axis=-1)

    @property
    def weight_bytes(self) -> int:
        """Total model size in bytes (weights + biases at storage width)."""
        total = 0
        for layer in self.layers:
            width = layer.weights.fmt.total_bits // 8
            total += (layer.weights.size + layer.bias.size) * width
        return total


def quantize_model(dnn, calibration_x: np.ndarray, total_bits: int = 8) -> QuantizedModel:
    """Post-training quantization of a trained float DNN.

    Parameters
    ----------
    dnn:
        A :class:`repro.ml.dnn.DNN` (anything exposing ``layers`` with
        ``weights`` (out, in), ``bias`` and ``activation`` attributes, plus
        ``forward_upto(x, i)`` returning the input to layer ``i``).
    calibration_x:
        Representative inputs used to calibrate per-layer activation ranges,
        as TFLite does with a calibration dataset.
    total_bits:
        Storage width (8 for Taurus's fix8 datapath).
    """
    calibration_x = np.atleast_2d(np.asarray(calibration_x, dtype=np.float64))
    layers: list[QuantizedLinear] = []
    for i, layer in enumerate(dnn.layers):
        w = np.asarray(layer.weights, dtype=np.float64)
        b = np.asarray(layer.bias, dtype=np.float64)
        layer_in = dnn.forward_upto(calibration_x, i)
        pre_act = layer_in @ w.T + b
        # Per-channel weight binary points (TFLite-style for Dense kernels)
        # plus per-tensor input/output calibration; shift-based
        # requantization bridges them.
        w_fmt = format_for_range(np.concatenate([w.ravel(), [1e-3]]), total_bits)
        in_fmt = format_for_range(layer_in, total_bits)
        out_fmt = format_for_range(
            np.concatenate([pre_act.ravel(), b.ravel()]), total_bits
        )
        w_frac = np.array(
            [choose_frac_bits(np.append(row, 1e-3), total_bits) for row in w],
            dtype=np.int64,
        )
        w_raw = np.stack(
            [
                w_fmt.with_frac_bits(int(frac)).quantize(row).astype(np.int64)
                for row, frac in zip(w, w_frac)
            ]
        )
        layers.append(
            QuantizedLinear(
                weights=FixTensor.from_float(w, w_fmt),
                bias=FixTensor.from_float(b, out_fmt),
                activation=layer.activation,
                in_fmt=in_fmt,
                act_fmt=out_fmt,
                w_raw=w_raw,
                w_frac=w_frac,
            )
        )
    return QuantizedModel(layers)
