"""Fixed-point number formats for the Taurus MapReduce fabric.

Taurus executes all datapath arithmetic in reduced-precision fixed point
(Section 4: "We use fixed-point reduced precision hardware to execute the
arithmetic needed for the linear algebra in ML algorithms").  The canonical
configuration is 8-bit ("fix8"); 16- and 32-bit variants exist for the
precision study in Table 4.

A :class:`FixedPointFormat` is a signed Q-format: ``total_bits`` two's
complement bits of which ``frac_bits`` sit right of the binary point.  Values
are stored as integers scaled by ``2**frac_bits`` and saturate at the
representable range instead of wrapping, matching inference-oriented
fixed-point hardware (wrap-around would catastrophically corrupt dot
products; saturation merely clips them).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "FixedPointFormat",
    "FIX8",
    "FIX16",
    "FIX32",
    "FORMATS_BY_NAME",
]


@dataclass(frozen=True)
class FixedPointFormat:
    """A signed two's-complement Q-format.

    Parameters
    ----------
    total_bits:
        Width of the stored integer, including the sign bit.
    frac_bits:
        Number of fractional bits; the scale factor is ``2**frac_bits``.
    name:
        Short label used in reports (e.g. ``"fix8"``).
    """

    total_bits: int
    frac_bits: int
    name: str

    def __post_init__(self) -> None:
        if self.total_bits not in (8, 16, 32):
            raise ValueError(f"unsupported width: {self.total_bits}")
        if not 0 <= self.frac_bits < self.total_bits:
            raise ValueError(
                f"frac_bits must be in [0, {self.total_bits}), got {self.frac_bits}"
            )

    @property
    def int_bits(self) -> int:
        """Integer bits, excluding the sign bit."""
        return self.total_bits - self.frac_bits - 1

    @property
    def scale(self) -> float:
        """Multiplier applied to real values before rounding to integers."""
        return float(1 << self.frac_bits)

    @property
    def raw_min(self) -> int:
        """Smallest representable stored integer."""
        return -(1 << (self.total_bits - 1))

    @property
    def raw_max(self) -> int:
        """Largest representable stored integer."""
        return (1 << (self.total_bits - 1)) - 1

    @property
    def min_value(self) -> float:
        """Smallest representable real value."""
        return self.raw_min / self.scale

    @property
    def max_value(self) -> float:
        """Largest representable real value."""
        return self.raw_max / self.scale

    @property
    def resolution(self) -> float:
        """Real-valued gap between adjacent representable numbers."""
        return 1.0 / self.scale

    @property
    def storage_dtype(self) -> np.dtype:
        """Numpy dtype used to store raw integers."""
        return np.dtype({8: np.int8, 16: np.int16, 32: np.int32}[self.total_bits])

    @property
    def wide_dtype(self) -> np.dtype:
        """Numpy dtype wide enough to hold products without overflow."""
        return np.dtype({8: np.int32, 16: np.int64, 32: np.int64}[self.total_bits])

    def quantize(self, values: np.ndarray | float) -> np.ndarray:
        """Convert real values to raw integers with round-to-nearest-even.

        Non-finite inputs degrade safely: NaN quantizes to zero, +/-inf
        saturate to the format limits (hardware has no NaNs to propagate).
        """
        values = np.nan_to_num(
            np.asarray(values, dtype=np.float64),
            nan=0.0,
            posinf=self.max_value,
            neginf=self.min_value,
        )
        # Pre-clip so huge finite values cannot overflow the scale multiply.
        values = np.clip(values, self.min_value, self.max_value)
        raw = np.rint(values * self.scale)
        return np.clip(raw, self.raw_min, self.raw_max).astype(self.storage_dtype)

    def dequantize(self, raw: np.ndarray) -> np.ndarray:
        """Convert raw integers back to float64 real values."""
        return np.asarray(raw, dtype=np.float64) / self.scale

    def saturate(self, raw: np.ndarray) -> np.ndarray:
        """Clip wide intermediate integers into the representable range."""
        return np.clip(raw, self.raw_min, self.raw_max).astype(self.storage_dtype)

    def roundtrip(self, values: np.ndarray | float) -> np.ndarray:
        """Quantize then dequantize; the fixed-point view of ``values``."""
        return self.dequantize(self.quantize(values))

    def with_frac_bits(self, frac_bits: int) -> "FixedPointFormat":
        """Return a copy of this format with a different binary point."""
        return FixedPointFormat(self.total_bits, frac_bits, self.name)

    # ------------------------------------------------------------------
    # Interval helpers (repro.analysis.ranges works in these terms)
    # ------------------------------------------------------------------
    @property
    def wide_min(self) -> int:
        """Smallest value of the wide accumulator dtype."""
        return int(np.iinfo(self.wide_dtype).min)

    @property
    def wide_max(self) -> int:
        """Largest value of the wide accumulator dtype."""
        return int(np.iinfo(self.wide_dtype).max)

    def raw_interval(self, lo: float, hi: float) -> tuple[int, int]:
        """A real interval in raw fixed-point units, rounded outward.

        Conservative by construction (floor the low end, ceil the high
        end), so a sound real-valued bound stays sound in raw units.
        """
        return int(np.floor(lo * self.scale)), int(np.ceil(hi * self.scale))

    def covers(self, lo: float, hi: float) -> bool:
        """Whether ``[lo, hi]`` quantizes without saturation.

        Values within half a resolution step beyond the representable
        range still round *to* the range limit — that is rounding, not
        clipping — so the acceptance band is padded by ``resolution/2``.
        """
        slack = self.resolution / 2.0
        return lo >= self.min_value - slack and hi <= self.max_value + slack

    def narrowest_total_bits(self, lo: float, hi: float) -> int | None:
        """Smallest standard width holding ``[lo, hi]`` at this binary point.

        Returns the least ``total_bits`` in (8, 16, 32) whose signed raw
        range contains the interval (keeping ``frac_bits`` fixed), or
        ``None`` when even 32 bits cannot (unbounded intervals included).
        """
        if not (np.isfinite(lo) and np.isfinite(hi)):
            return None
        raw_lo, raw_hi = self.raw_interval(lo, hi)
        for total in (8, 16, 32):
            if self.frac_bits >= total:
                continue
            if -(1 << (total - 1)) <= raw_lo and raw_hi <= (1 << (total - 1)) - 1:
                return total
        return None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}(Q{self.int_bits}.{self.frac_bits})"


#: Taurus's datapath format: 8-bit, Q3.4 by default (range [-8, 7.9375]).
FIX8 = FixedPointFormat(total_bits=8, frac_bits=4, name="fix8")

#: 16-bit variant used in the Table 4 precision study (Q7.8).
FIX16 = FixedPointFormat(total_bits=16, frac_bits=8, name="fix16")

#: 32-bit variant used in the Table 4 precision study (Q15.16).
FIX32 = FixedPointFormat(total_bits=32, frac_bits=16, name="fix32")

FORMATS_BY_NAME = {fmt.name: fmt for fmt in (FIX8, FIX16, FIX32)}
