"""Target-independent loop unrolling (Section 4, Table 7).

"Parallelizing MapReduce programs unrolls loops in space: if sufficient
hardware resources are available, a model can execute one iteration per
cycle.  As loop unrolling happens at compile-time, Taurus can guarantee
deterministic throughput: either line-rate performance, or some known
fraction thereof."

This module sweeps unroll factors for loop-shaped kernels and reports the
throughput/area trade-off of Table 7, plus helpers to pick the smallest
factor meeting a rate target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..hw.params import CUGeometry, DEFAULT_CU_GEOMETRY
from ..mapreduce.ir import DataflowGraph
from .pipeline import CompiledDesign, compile_graph

__all__ = ["UnrollPoint", "unroll_sweep", "min_unroll_for_rate"]


@dataclass(frozen=True)
class UnrollPoint:
    """One row of an unrolling sweep (Table 7's columns)."""

    unroll: int
    line_rate_fraction: float
    area_mm2: float
    design: CompiledDesign


def unroll_sweep(
    builder: Callable[[int], DataflowGraph],
    factors: Sequence[int] = (1, 2, 4, 8),
    geometry: CUGeometry = DEFAULT_CU_GEOMETRY,
) -> list[UnrollPoint]:
    """Compile ``builder(factor)`` for each factor.

    ``builder`` maps an unroll factor to a dataflow graph (e.g.
    :func:`~repro.mapreduce.frontend.conv1d_graph`).
    """
    points = []
    for factor in factors:
        design = compile_graph(builder(factor), geometry)
        points.append(
            UnrollPoint(
                unroll=factor,
                line_rate_fraction=design.line_rate_fraction,
                area_mm2=design.area_mm2,
                design=design,
            )
        )
    return points


def min_unroll_for_rate(
    builder: Callable[[int], DataflowGraph],
    target_fraction: float,
    factors: Sequence[int] = (1, 2, 4, 8),
    geometry: CUGeometry = DEFAULT_CU_GEOMETRY,
) -> UnrollPoint:
    """Smallest unroll factor sustaining ``target_fraction`` of line rate.

    Models the deployment decision the paper describes: static line-rate
    reduction is acceptable (recirculation / oversubscription), so pick the
    cheapest design that meets the SLO.
    """
    if not 0.0 < target_fraction <= 1.0:
        raise ValueError("target_fraction must be in (0, 1]")
    for point in unroll_sweep(builder, factors, geometry):
        if point.line_rate_fraction >= target_fraction:
            return point
    raise ValueError(
        f"no unroll factor in {list(factors)} reaches {target_fraction:.2f} of line rate"
    )
