"""Resource allocation: dataflow nodes -> CU/MU counts and cycle costs.

Implements the paper's lowering rules (Sections 4, 5.1.3):

* an inner MapReduce (map chain + tree reduce) occupies one CU when the
  vector fits the lanes and the chain fits the stages;
* wider vectors split into ``ceil(width / lanes)`` partial CUs plus a merge;
* longer op chains split into ``ceil(chain / stages)`` CUs in series
  ("overly-large patterns ... are split into smaller patterns that fit in
  CUs and MUs");
* weights and lookup tables occupy MU banks (16 banks x 1024 x 8 bit).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..hw.params import (
    CUGeometry,
    DEFAULT_CU_GEOMETRY,
    DEFAULT_MU_BANKS,
    DEFAULT_MU_ENTRIES,
    HOP_CYCLES,
    MU_ACCESS_CYCLES,
)
from ..mapreduce.ir import DataflowGraph, Node
from ..mapreduce.ops import reduce_tree_depth

__all__ = ["NodeCost", "node_cost", "graph_resources", "GraphResources", "mu_capacity_values"]


def mu_capacity_values(
    banks: int = DEFAULT_MU_BANKS, entries: int = DEFAULT_MU_ENTRIES
) -> int:
    """Weight values one MU can hold at datapath width."""
    return banks * entries


@dataclass(frozen=True)
class NodeCost:
    """Hardware footprint and pipeline latency of one dataflow node.

    ``cycles`` is the node's compute latency; ``hops`` counts the
    interconnect data movements it adds to the critical path (~5 cycles
    each, Section 5.1.3).
    """

    n_cu: int
    n_mu: int
    cycles: int
    hops: int

    @property
    def latency_cycles(self) -> int:
        return self.cycles + self.hops * HOP_CYCLES


def node_cost(node: Node, geometry: CUGeometry = DEFAULT_CU_GEOMETRY) -> NodeCost:
    """Cost of a single node under the given CU geometry."""
    lanes, stages = geometry.lanes, geometry.stages

    if node.kind in ("input", "output"):
        # PHV boundaries are accounted at the graph level.
        return NodeCost(0, 0, 0, 0)

    if node.kind == "const":
        # Tiny banks fit in the consumer CU's pipeline registers; only
        # larger weight sets occupy MUs and pay the access + hop cost.
        if node.weight_values <= geometry.n_fus:
            return NodeCost(0, 0, 0, 0)
        n_mu = math.ceil(node.weight_values / mu_capacity_values())
        return NodeCost(0, max(n_mu, 1), MU_ACCESS_CYCLES, 1)

    if node.kind == "lut":
        n_mu = max(1, math.ceil(node.weight_values / mu_capacity_values()))
        return NodeCost(0, n_mu, MU_ACCESS_CYCLES, 1)

    if node.kind in ("dot", "mapreduce"):
        partials = math.ceil(node.width / lanes)
        chain = max(node.chain_ops, 1)
        series = max(1, math.ceil(chain / stages))
        if partials == 1:
            # Narrow instances pack side by side into one CU's lanes
            # ("sparse reductions" in the third stage, Fig. 8).
            per_cu = max(1, lanes // node.width)
            n_cu = math.ceil(node.parallel / per_cu) * series
        else:
            n_cu = node.parallel * partials * series
        cycles = chain + reduce_tree_depth(min(node.width, lanes), lanes)
        hops = series
        if partials > 1:
            # Partial sums merge in extra CUs (small packed tree reduces).
            per_cu = max(1, lanes // partials)
            n_cu += math.ceil(node.parallel / per_cu)
            cycles += 1 + reduce_tree_depth(partials, lanes)
            hops += 1
        return NodeCost(n_cu, 0, cycles, hops)

    if node.kind == "map":
        chain = max(node.chain_ops, 1)
        series = max(1, math.ceil(chain / stages))
        wide = math.ceil(node.width / lanes)
        n_cu = node.parallel * series * wide
        # Each CU in the series is a full pipeline pass (stage count deep).
        return NodeCost(n_cu, 0, series * stages, series)

    if node.kind == "gather":
        groups = math.ceil(node.width / lanes)
        depth = 1
        while groups > 1:
            depth += 1
            groups = math.ceil(groups / lanes)
        n_cu = max(1, math.ceil(node.width / lanes))
        return NodeCost(n_cu, 0, depth * stages, depth)

    if node.kind == "reduce":
        n_cu = max(1, math.ceil(node.width / lanes))
        cycles = 1 + reduce_tree_depth(min(node.width, lanes), lanes)
        extra = 0
        if node.width > lanes:
            cycles += 1 + reduce_tree_depth(math.ceil(node.width / lanes), lanes)
            extra = 1
        return NodeCost(n_cu, 0, cycles, 1 + extra)

    raise ValueError(f"unknown node kind {node.kind!r}")  # pragma: no cover


@dataclass(frozen=True)
class GraphResources:
    """Aggregate hardware demand of a dataflow graph."""

    n_cu: int
    n_mu: int
    per_node: dict

    def fits(self, cu_budget: int, mu_budget: int) -> bool:
        return self.n_cu <= cu_budget and self.n_mu <= mu_budget


def graph_resources(
    graph: DataflowGraph, geometry: CUGeometry = DEFAULT_CU_GEOMETRY
) -> GraphResources:
    """Total CU/MU demand (temporal iterations reuse the same hardware)."""
    per_node = {node.node_id: node_cost(node, geometry) for node in graph.nodes.values()}
    return GraphResources(
        n_cu=sum(c.n_cu for c in per_node.values()),
        n_mu=sum(c.n_mu for c in per_node.values()),
        per_node=per_node,
    )
