"""Placement and routing onto the checkerboard grid.

The final target-dependent compilation step (Section 4): "the resulting
graph is placed and routed on the MapReduce block's interconnect."  The
grid interleaves CUs and MUs (3:1) joined by a static mesh; we place each
node's units greedily near their predecessors and route nets with shortest
paths over the mesh (networkx), verifying capacity and reporting hop
statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from ..hw.params import (
    CUGeometry,
    DEFAULT_CU_GEOMETRY,
    GRID_COLS,
    GRID_CU_TO_MU_RATIO,
    GRID_ROWS,
)
from ..mapreduce.ir import DataflowGraph
from .allocate import graph_resources

__all__ = ["GridSpec", "Placement", "place_and_route"]


@dataclass(frozen=True)
class GridSpec:
    """Physical layout of one MapReduce block."""

    rows: int = GRID_ROWS
    cols: int = GRID_COLS
    cu_to_mu_ratio: int = GRID_CU_TO_MU_RATIO

    def unit_kind(self, row: int, col: int) -> str:
        """'cu' or 'mu' for the tile at (row, col).

        MUs are interspersed every ``ratio + 1`` tiles in raster order, which
        yields the paper's checkerboard-with-3:1 pattern.
        """
        index = row * self.cols + col
        return "mu" if index % (self.cu_to_mu_ratio + 1) == self.cu_to_mu_ratio else "cu"

    def mesh(self) -> nx.Graph:
        """The static switch fabric: a 2-D mesh over all tiles."""
        return nx.grid_2d_graph(self.rows, self.cols)

    def tiles(self, kind: str) -> list[tuple[int, int]]:
        return [
            (r, c)
            for r in range(self.rows)
            for c in range(self.cols)
            if self.unit_kind(r, c) == kind
        ]


@dataclass
class Placement:
    """Result of placing a dataflow graph on a grid."""

    graph_name: str
    assignments: dict[int, list[tuple[int, int]]] = field(default_factory=dict)
    routes: list[list[tuple[int, int]]] = field(default_factory=list)
    fold_factor: int = 1

    @property
    def n_tiles_used(self) -> int:
        return sum(len(tiles) for tiles in self.assignments.values())

    @property
    def total_route_hops(self) -> int:
        return sum(max(0, len(path) - 1) for path in self.routes)

    @property
    def max_route_hops(self) -> int:
        return max((max(0, len(path) - 1) for path in self.routes), default=0)


def place_and_route(
    graph: DataflowGraph,
    grid: GridSpec | None = None,
    geometry: CUGeometry = DEFAULT_CU_GEOMETRY,
) -> Placement:
    """Greedy placement + shortest-path routing.

    Nodes are placed in topological order; each node's CUs/MUs take the
    free tiles nearest the centroid of its predecessors' tiles (keeping
    producer-consumer pairs adjacent, which is what the checkerboard layout
    is for).  Demand beyond the grid's capacity is folded (time-multiplexed)
    first, exactly as :func:`~repro.compiler.pipeline.compile_graph` does.
    """
    grid = grid or GridSpec()
    resources = graph_resources(graph, geometry)

    free = {"cu": list(grid.tiles("cu")), "mu": list(grid.tiles("mu"))}
    capacity = {"cu": len(free["cu"]), "mu": len(free["mu"])}

    fold = 1
    demand_cu = resources.n_cu
    if demand_cu > capacity["cu"]:
        fold = -(-demand_cu // capacity["cu"])  # ceil division
    if resources.n_mu > capacity["mu"]:
        raise ValueError(
            f"{graph.name}: {resources.n_mu} MUs exceed grid capacity {capacity['mu']}"
        )

    mesh = grid.mesh()
    placement = Placement(graph_name=graph.name, fold_factor=fold)

    def centroid(tiles: list[tuple[int, int]]) -> tuple[float, float]:
        if not tiles:
            return (grid.rows / 2, grid.cols / 2)
        return (
            sum(t[0] for t in tiles) / len(tiles),
            sum(t[1] for t in tiles) / len(tiles),
        )

    for node in graph.topo_order():
        cost = resources.per_node[node.node_id]
        n_cu = -(-cost.n_cu // fold) if cost.n_cu else 0
        n_mu = cost.n_mu
        pred_tiles = [
            tile
            for pred in node.preds
            for tile in placement.assignments.get(pred, [])
        ]
        anchor = centroid(pred_tiles)
        chosen: list[tuple[int, int]] = []
        for kind, count in (("cu", n_cu), ("mu", n_mu)):
            if not count:
                continue
            free[kind].sort(
                key=lambda t: (t[0] - anchor[0]) ** 2 + (t[1] - anchor[1]) ** 2
            )
            if count > len(free[kind]):
                raise ValueError(
                    f"{graph.name}: node {node.name!r} needs {count} {kind.upper()}s, "
                    f"{len(free[kind])} free"
                )
            taken, free[kind] = free[kind][:count], free[kind][count:]
            chosen.extend(taken)
        placement.assignments[node.node_id] = chosen
        # Route one net from each predecessor's first tile to ours.
        if chosen:
            for pred in node.preds:
                src_tiles = placement.assignments.get(pred, [])
                if src_tiles:
                    path = nx.shortest_path(mesh, src_tiles[0], chosen[0])
                    placement.routes.append(path)
    return placement
