"""The Taurus MapReduce compiler: allocation, unrolling, timing, P&R."""

from .allocate import (
    GraphResources,
    NodeCost,
    graph_resources,
    mu_capacity_values,
    node_cost,
)
from .pipeline import BudgetError, CompiledDesign, compile_graph, critical_path_cycles
from .place_route import GridSpec, Placement, place_and_route
from .unroll import UnrollPoint, min_unroll_for_rate, unroll_sweep

__all__ = [
    "BudgetError",
    "GraphResources",
    "NodeCost",
    "graph_resources",
    "mu_capacity_values",
    "node_cost",
    "CompiledDesign",
    "compile_graph",
    "critical_path_cycles",
    "GridSpec",
    "Placement",
    "place_and_route",
    "UnrollPoint",
    "min_unroll_for_rate",
    "unroll_sweep",
]
