"""Latency / throughput analysis and the compiled-design summary.

The latency model follows Section 5.1.3 exactly:

* a CU MapReduce takes ``1 (map) + log2(lanes) (reduce)`` cycles;
* every data movement between fabric elements costs ~5 cycles;
* entering/leaving the fabric crosses the PHV FIFO boundary (4 cycles each
  way);
* recurrent graphs multiply the step critical path by their temporal
  iteration count (the LSTM's 805 ns);
* graphs whose loops are not fully unrolled issue a packet every
  ``initiation_interval`` cycles — "either line-rate performance, or some
  known fraction thereof" (Table 7).

Folding: when a graph demands more CUs than the grid offers, the compiler
time-multiplexes it (fold factor F), shrinking area by ~F while multiplying
the initiation interval by F and adding pipeline-refill latency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..hw.area import cu_area_mm2, mu_area_mm2
from ..hw.params import (
    CLOCK_GHZ,
    CUGeometry,
    DEFAULT_CU_GEOMETRY,
    HOP_CYCLES,
    PHV_INTERFACE_CYCLES,
)
from ..hw.power import cu_power_mw, mu_power_mw
from ..mapreduce.ir import DataflowGraph
from .allocate import GraphResources, graph_resources

__all__ = [
    "BudgetError",
    "CompiledDesign",
    "critical_path_cycles",
    "compile_graph",
]


class BudgetError(ValueError):
    """A graph's resource demand exceeds the grid budget.

    Raised by :func:`compile_graph` symmetrically for both resources —
    always for MU overflow, and for CU overflow when folding is disabled.
    The asymmetry in *default* behavior is physical, not accidental: CUs
    are time-multiplexable (the compiler folds the graph, trading
    initiation interval for area), while MU-resident weights must stay
    loaded for every pass, so MU overflow has no fold to fall back on.

    Attributes mirror the message so callers (and the static analyzer's
    ``budget-*`` prechecks) can reason about the overflow without string
    parsing.
    """

    def __init__(self, graph_name: str, resource: str, needed: int, budget: int, hint: str):
        self.graph_name = graph_name
        self.resource = resource
        self.needed = needed
        self.budget = budget
        super().__init__(
            f"{graph_name}: needs {needed} {resource}s but the grid has "
            f"{budget}; {hint}"
        )


def _path_lengths(
    graph: DataflowGraph, geometry: CUGeometry
) -> tuple[int, int]:
    """(step_path, epilogue_extra) longest-path cycles through the graph.

    ``step_path`` covers the recurrent body (non-epilogue nodes);
    ``epilogue_extra`` is the additional depth of once-only epilogue nodes
    (e.g. the LSTM's action head after the final step).
    """
    resources = graph_resources(graph, geometry)
    dist: dict[int, int] = {}
    for node in graph.topo_order():
        cost = resources.per_node[node.node_id]
        data_preds = [p for p in node.preds if graph.nodes[p].kind != "const"]
        const_preds = [p for p in node.preds if graph.nodes[p].kind == "const"]
        best_pred = max((dist.get(p, 0) for p in data_preds), default=0)
        # Weight streams serialize with data arrival: the consuming CU pays
        # the MU access + hop before its first compute cycle.
        const_extra = sum(resources.per_node[p].latency_cycles for p in const_preds)
        dist[node.node_id] = best_pred + const_extra + cost.latency_cycles
    body = max(
        (dist[n.node_id] for n in graph.nodes.values() if not n.epilogue),
        default=0,
    )
    total = max(dist.values(), default=0)
    return body, total - body


def critical_path_cycles(
    graph: DataflowGraph, geometry: CUGeometry = DEFAULT_CU_GEOMETRY
) -> int:
    """Longest input->output path of one pass through the graph (cycles).

    Includes the PHV ingress/egress interface and the final output hop.
    """
    body, epilogue = _path_lengths(graph, geometry)
    return PHV_INTERFACE_CYCLES + body + epilogue + HOP_CYCLES + PHV_INTERFACE_CYCLES


@dataclass(frozen=True)
class CompiledDesign:
    """The compiler's answer for one model on one fabric configuration."""

    name: str
    geometry: CUGeometry
    n_cu: int
    n_mu: int
    fold_factor: int
    initiation_interval: int
    latency_cycles: int
    temporal_iterations: int

    @property
    def latency_ns(self) -> float:
        """End-to-end inference latency at the fabric clock."""
        return self.latency_cycles / CLOCK_GHZ

    @property
    def line_rate_fraction(self) -> float:
        """Fraction of 1 GPkt/s this design sustains (1.0 = line rate)."""
        return 1.0 / self.initiation_interval

    @property
    def throughput_gpkt_s(self) -> float:
        return CLOCK_GHZ * self.line_rate_fraction

    @property
    def area_mm2(self) -> float:
        """Area of the CUs/MUs doing useful work (Table 5's accounting)."""
        return self.n_cu * cu_area_mm2(self.geometry) + self.n_mu * mu_area_mm2()

    @property
    def power_mw(self) -> float:
        """Power with every mapped FU active and unused CUs disabled."""
        return self.n_cu * cu_power_mw(self.geometry) + self.n_mu * mu_power_mw()


def compile_graph(
    graph: DataflowGraph,
    geometry: CUGeometry = DEFAULT_CU_GEOMETRY,
    cu_budget: int | None = None,
    mu_budget: int | None = None,
    fold: bool = True,
) -> CompiledDesign:
    """Allocate, fold to fit, and time a dataflow graph.

    ``cu_budget``/``mu_budget`` default to unlimited (the Table 5 rows size
    the grid *after* compilation); pass the grid's capacity to model
    mapping onto a fixed 12x10 block.

    Overflow handling is uniform: both budgets raise :class:`BudgetError`
    when the graph cannot be mapped.  CU overflow *can* be absorbed by
    time-multiplexing — with ``fold=True`` (the default) the compiler
    folds the graph by ``ceil(n_cu / cu_budget)``, multiplying the
    initiation interval; ``fold=False`` demands a spatial fit and raises
    instead.  MU overflow always raises: weights must stay resident
    across every folded pass, so there is no time/area trade to make
    (Section 6: larger models need compression).
    """
    resources: GraphResources = graph_resources(graph, geometry)
    n_cu, n_mu = resources.n_cu, resources.n_mu

    fold_factor = 1
    if cu_budget is not None and n_cu > cu_budget:
        if not fold:
            raise BudgetError(
                graph.name, "CU", n_cu, cu_budget,
                "folding is disabled (fold=False), so the graph must fit "
                "spatially",
            )
        fold_factor = math.ceil(n_cu / cu_budget)
        n_cu = math.ceil(n_cu / fold_factor)
    if mu_budget is not None and n_mu > mu_budget:
        raise BudgetError(
            graph.name, "MU", n_mu, mu_budget,
            "model weights exceed on-chip memory and cannot be "
            "time-multiplexed (Section 6: larger models need compression)",
        )

    body, epilogue = _path_lengths(graph, geometry)
    boundary = 2 * PHV_INTERFACE_CYCLES + HOP_CYCLES
    # The recurrent body repeats per history element; the epilogue and the
    # PHV boundary are paid once.  Folded passes refill the pipeline: one
    # extra issue slot per extra pass.
    latency = (
        body * graph.temporal_iterations + epilogue + boundary + (fold_factor - 1)
    )
    ii = graph.initiation_interval * fold_factor * graph.temporal_iterations
    return CompiledDesign(
        name=graph.name,
        geometry=geometry,
        n_cu=n_cu,
        n_mu=n_mu,
        fold_factor=fold_factor,
        initiation_interval=ii,
        latency_cycles=latency,
        temporal_iterations=graph.temporal_iterations,
    )
