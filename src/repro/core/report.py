"""Rendering helpers: paper-style tables written to text files.

Every benchmark regenerates its table/figure as plain rows and records them
under ``results/`` so paper-vs-measured comparisons are diffable.
"""

from __future__ import annotations

import os
from typing import Sequence

__all__ = ["render_table", "write_result", "series_to_text"]


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """Fixed-width text table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in str_rows)) if str_rows else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = [title, ""]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.01:
            return f"{cell:.3g}"
        return f"{cell:.3f}".rstrip("0").rstrip(".")
    return str(cell)


def write_result(name: str, content: str, results_dir: str | None = None) -> str:
    """Write a table/series under results/; returns the path."""
    directory = results_dir or os.environ.get("TAURUS_RESULTS_DIR", "results")
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(content.rstrip() + "\n")
    return path


def series_to_text(name: str, series: dict[str, list[tuple[float, float]]]) -> str:
    """Render figure series as (x, y) columns per label."""
    lines = [name, ""]
    for label, points in series.items():
        lines.append(f"# series: {label}")
        for x, y in points:
            lines.append(f"{x:.6g}\t{y:.6g}")
        lines.append("")
    return "\n".join(lines)
