"""Top-level configuration for a Taurus device."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hw.params import (
    CUGeometry,
    DEFAULT_CU_GEOMETRY,
    GRID_COLS,
    GRID_CU_TO_MU_RATIO,
    GRID_ROWS,
    SwitchChipParams,
)

__all__ = ["TaurusConfig"]


@dataclass(frozen=True)
class TaurusConfig:
    """Everything that defines one Taurus switch instance.

    Defaults reproduce the paper's final ASIC: 16x4 fix8 CUs on a 12x10,
    3:1 grid inside a 500 mm^2, 4-pipeline, 270 W switch.
    """

    geometry: CUGeometry = DEFAULT_CU_GEOMETRY
    grid_rows: int = GRID_ROWS
    grid_cols: int = GRID_COLS
    cu_to_mu_ratio: int = GRID_CU_TO_MU_RATIO
    chip: SwitchChipParams = field(default_factory=SwitchChipParams)
    decision_threshold: float = 0.5

    def __post_init__(self) -> None:
        if self.grid_rows <= 0 or self.grid_cols <= 0:
            raise ValueError("grid dimensions must be positive")
        if not 0.0 < self.decision_threshold < 1.0:
            raise ValueError("decision_threshold must be in (0, 1)")

    @property
    def n_cus(self) -> int:
        total = self.grid_rows * self.grid_cols
        return total - total // (self.cu_to_mu_ratio + 1)

    @property
    def n_mus(self) -> int:
        return self.grid_rows * self.grid_cols // (self.cu_to_mu_ratio + 1)
