"""Integration layer: the TaurusSwitch device, configuration, reporting."""

from .config import TaurusConfig
from .device import TaurusSwitch
from .report import render_table, series_to_text, write_result

__all__ = [
    "TaurusConfig",
    "TaurusSwitch",
    "render_table",
    "series_to_text",
    "write_result",
]
