"""The integrated Taurus switch: parser + MATs + MapReduce + scheduler.

:class:`TaurusSwitch` is the library's headline object — a programmable
switch you load a model into and push packets through, with the compiled
design's area/power/latency a property away.  It wires together the PISA
pipeline, the compiled MapReduce block, and the chip-level accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..compiler.pipeline import CompiledDesign
from ..compiler.place_route import GridSpec, Placement, place_and_route
from ..hw.asic import OverheadReport, TaurusChip
from ..hw.grid import MapReduceBlock
from ..mapreduce.ir import DataflowGraph
from ..pisa import (
    Packet,
    PipelineResult,
    TaurusPipeline,
    TracePipelineResult,
    threshold_postprocess,
)
from .config import TaurusConfig

__all__ = ["TaurusSwitch"]


@dataclass
class TaurusSwitch:
    """A Taurus-enabled switch running one ML program per pipeline.

    Build with :meth:`with_program`; process packets with
    :meth:`process`; interrogate cost with :attr:`design` /
    :meth:`overheads`.
    """

    config: TaurusConfig
    pipeline: TaurusPipeline
    block: MapReduceBlock
    chip: TaurusChip

    @classmethod
    def with_program(
        cls,
        graph: DataflowGraph,
        feature_names: tuple[str, ...],
        config: TaurusConfig | None = None,
        postprocess=None,
        bypass_predicate=None,
        postprocess_batch=None,
        bypass_predicate_batch=None,
    ) -> "TaurusSwitch":
        """Configure a switch with a compiled MapReduce program.

        Decision hooks come in matched scalar/vectorized pairs.  When
        neither ``postprocess`` nor ``postprocess_batch`` is given, both
        default to thresholding at ``config.decision_threshold``, so
        batched trace runs stay on the vectorized path out of the box.
        Supplying a custom scalar hook without its batched twin is still
        correct — the batched pipeline falls back to per-row evaluation —
        just slower; supply both to keep trace replay fast (and keep them
        semantically identical: the scalar hook remains the oracle).
        Supplying only a batched hook is rejected: without its scalar
        oracle the two execution paths could silently diverge.
        """
        config = config or TaurusConfig()
        if postprocess_batch is not None and postprocess is None:
            raise ValueError(
                "postprocess_batch needs its scalar postprocess oracle"
            )
        if bypass_predicate_batch is not None and bypass_predicate is None:
            raise ValueError(
                "bypass_predicate_batch needs its scalar bypass_predicate oracle"
            )
        block = MapReduceBlock(
            graph,
            geometry=config.geometry,
            cu_budget=config.n_cus,
            mu_budget=config.n_mus,
        )
        if postprocess is None:
            postprocess, postprocess_batch = threshold_postprocess(
                config.decision_threshold
            )
        kwargs = {"postprocess": postprocess}
        if postprocess_batch is not None:
            kwargs["postprocess_batch"] = postprocess_batch
        if bypass_predicate is not None:
            kwargs["bypass_predicate"] = bypass_predicate
        if bypass_predicate_batch is not None:
            kwargs["bypass_predicate_batch"] = bypass_predicate_batch
        pipeline = TaurusPipeline(block=block, feature_names=feature_names, **kwargs)
        return cls(
            config=config,
            pipeline=pipeline,
            block=block,
            chip=TaurusChip(config.chip),
        )

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def process(self, packet: Packet) -> PipelineResult:
        """One packet through the full pipeline."""
        return self.pipeline.process(packet)

    def process_trace_batch(
        self, trace, chunk_size: int | None = None
    ) -> TracePipelineResult:
        """A whole trace through the vectorized pipeline path."""
        kwargs = {} if chunk_size is None else {"chunk_size": chunk_size}
        return self.pipeline.process_trace_batch(trace, **kwargs)

    def infer(self, features: np.ndarray) -> np.ndarray:
        """Raw fabric inference, bypassing the header pipeline."""
        return np.atleast_1d(self.block.process(features).value)

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------
    def install_program(self, graph: DataflowGraph) -> None:
        """Push a new program / weight update (Fig. 1's weight path)."""
        self.block.reconfigure(graph)

    def install_preprocess(self, table) -> None:
        self.pipeline.install_preprocess(table)

    def install_postprocess(self, table) -> None:
        self.pipeline.install_postprocess(table)

    # ------------------------------------------------------------------
    # Cost accounting
    # ------------------------------------------------------------------
    @property
    def design(self) -> CompiledDesign:
        return self.block.design

    def overheads(self) -> OverheadReport:
        """Area/power/latency of the installed program (a Table 5 row)."""
        return self.chip.design_overheads(self.design)

    def placement(self) -> Placement:
        """Place-and-route the installed program on this switch's grid."""
        grid = GridSpec(
            rows=self.config.grid_rows,
            cols=self.config.grid_cols,
            cu_to_mu_ratio=self.config.cu_to_mu_ratio,
        )
        return place_and_route(self.block.graph, grid, self.config.geometry)
