"""Synthetic IoT traffic-classification datasets.

Two shapes are needed:

* Table 3 quantizes "DNNs for TMC IoT traffic classifiers" with kernels
  4x10x2, 4x5x5x2, 4x10x10x2 — i.e. four input features, two device
  classes, and float32 accuracy around 67%.  :func:`iot_binary_dataset`
  generates a two-class problem whose Bayes accuracy sits near that mark so
  the float-vs-fix8 *difference* (the quantity under test) is measured in a
  realistic regime.
* Table 5's KMeans application uses "11 features and five categories":
  :func:`iot_cluster_dataset` generates five device-class clusters in an
  11-dimensional feature space.

Feature semantics follow Sivanathan et al. (TMC '18): packet sizes, sleep
times, DNS/NTP intervals, active volumes — here drawn from parameterized
per-class distributions.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "iot_binary_dataset",
    "iot_cluster_dataset",
    "iot_packet_trace",
    "IOT_BINARY_FEATURES",
    "IOT_CLUSTER_FEATURES",
]

IOT_BINARY_FEATURES = ("mean_pkt_size", "flow_duration", "sleep_time", "dns_interval")

IOT_CLUSTER_FEATURES = (
    "mean_pkt_size",
    "flow_duration",
    "sleep_time",
    "dns_interval",
    "ntp_interval",
    "active_volume",
    "peak_rate",
    "mean_rate",
    "flow_count",
    "tls_ratio",
    "udp_ratio",
)


def iot_binary_dataset(
    n: int, seed: int = 0, class_separation: float = 0.8
) -> tuple[np.ndarray, np.ndarray]:
    """Two overlapping IoT device classes over 4 features.

    ``class_separation`` controls the distance between class means in units
    of the (shared) standard deviation; the default puts Bayes accuracy
    around the paper's ~67%.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    rng = np.random.default_rng(seed)
    half = n // 2
    labels = np.concatenate([np.zeros(half, dtype=np.int64), np.ones(n - half, dtype=np.int64)])
    d = len(IOT_BINARY_FEATURES)
    # Class means differ along a single direction; per-feature noise is
    # anisotropic so the boundary is not axis-aligned.
    direction = rng.normal(size=d)
    direction /= np.linalg.norm(direction)
    means = np.stack([-0.5 * class_separation * direction, 0.5 * class_separation * direction])
    scales = rng.uniform(0.8, 1.6, size=d)
    x = means[labels] + rng.normal(size=(n, d)) * scales
    # Mild non-Gaussian tail on one feature (sleep times are heavy-tailed).
    x[:, 2] += rng.exponential(0.4, size=n)
    order = rng.permutation(n)
    return x[order], labels[order]


def iot_cluster_dataset(
    n: int, n_classes: int = 5, seed: int = 0, spread: float = 1.0
) -> tuple[np.ndarray, np.ndarray]:
    """Five IoT device categories over 11 features (KMeans workload)."""
    if n <= 0:
        raise ValueError("n must be positive")
    if n_classes <= 1:
        raise ValueError("need at least two classes")
    rng = np.random.default_rng(seed)
    d = len(IOT_CLUSTER_FEATURES)
    centers = rng.normal(scale=3.0, size=(n_classes, d))
    labels = rng.integers(0, n_classes, size=n)
    x = centers[labels] + rng.normal(scale=spread, size=(n, d))
    return x, labels


def iot_packet_trace(
    n_packets: int,
    n_classes: int = 5,
    seed: int = 0,
    n_flows: int = 48,
    offered_gbps: float = 1.0,
    spread: float = 1.0,
):
    """Cluster-feature packets as a trace for the fabric / serving loop.

    Each packet's feature payload is one 11-dimensional cluster-feature
    vector (the :data:`IOT_CLUSTER_FEATURES` layout
    :meth:`~repro.runtime.FabricApp.from_kmeans` consumes) and its label
    is the generating device category — replaying the trace through an
    IoT app classifies per-packet flows the way the anomaly trace scores
    detections.  Packets spread over ``n_flows`` synthetic five-tuples
    with jittered arrivals, so the flow-consistent sharder has real work.
    """
    from .packets import FlowSpec, PacketRecord, PacketTrace

    if n_packets <= 0:
        raise ValueError("n_packets must be positive")
    if n_flows <= 0:
        raise ValueError("n_flows must be positive")
    features, labels = iot_cluster_dataset(
        n_packets, n_classes=n_classes, seed=seed, spread=spread
    )

    rng = np.random.default_rng(seed + 0x107)
    five_tuples = [
        (
            int(rng.integers(0, 2**32)),
            int(rng.integers(0, 2**32)),
            int(rng.integers(1024, 65535)),
            int(rng.choice([53, 123, 443, 8883])),
            int(rng.choice([0, 1])),
        )
        for __ in range(n_flows)
    ]
    flow_of = rng.integers(0, n_flows, size=n_packets)
    sizes = rng.integers(80, 1200, size=n_packets)
    gaps = rng.exponential(1.0, size=n_packets) * (
        sizes * 8.0 / (offered_gbps * 1e9)
    )
    times = np.cumsum(gaps)

    seq_in_flow = np.zeros(n_flows, dtype=np.int64)
    packets = []
    for i in range(n_packets):
        fid = int(flow_of[i])
        packets.append(
            PacketRecord(
                time=float(times[i]),
                flow_id=fid,
                five_tuple=five_tuples[fid],
                size_bytes=int(sizes[i]),
                features=features[i],
                label=int(labels[i]),
                attack_type=0,
                seq_in_flow=int(seq_in_flow[fid]),
            )
        )
        seq_in_flow[fid] += 1
    flows = [
        FlowSpec(
            flow_id=fid,
            five_tuple=five_tuples[fid],
            n_packets=int(seq_in_flow[fid]),
            mean_size=float(sizes.mean()),
            features=np.zeros(features.shape[1]),
            label=0,
            attack_type=0,
            start_time=0.0,
        )
        for fid in range(n_flows)
    ]
    return PacketTrace(
        packets=packets,
        flows=flows,
        duration=float(times[-1]),
        offered_gbps=offered_gbps,
    )
