"""Congestion-control traces for the Indigo LSTM benchmark.

Indigo (Yan et al., ATC '18) learns congestion control by imitating an
oracle on emulated network paths.  We reproduce that setup in miniature: a
single-bottleneck fluid simulation produces observation sequences
(queueing delay, delivery rate, send rate, cwnd, loss indicator) and an
AIMD-style oracle labels each window with the congestion-window action the
LSTM should imitate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "CongestionTraceConfig",
    "generate_congestion_traces",
    "congestion_packet_trace",
    "ACTIONS",
    "oracle_action",
]

#: Discrete cwnd actions (multiplicative factors), mirroring Indigo's
#: action set {-1/2x, -1 pkt, hold, +1 pkt, +1/2x} collapsed to factors.
ACTIONS = (0.5, 0.9, 1.0, 1.1, 2.0)


@dataclass(frozen=True)
class CongestionTraceConfig:
    """Parameters of the synthetic bottleneck."""

    bottleneck_gbps: float = 1.0
    base_rtt_ms: float = 0.5
    buffer_pkts: int = 256
    window_steps: int = 8       # observation window length fed to the LSTM
    step_ms: float = 0.1        # observation interval


def oracle_action(queue_frac: float, loss: float, utilization: float) -> int:
    """Expert policy: drain deep queues, grow into unused capacity."""
    if loss > 0.0 or queue_frac > 0.85:
        return 0  # halve
    if queue_frac > 0.5:
        return 1  # gentle decrease
    if utilization < 0.4 and queue_frac < 0.1:
        return 4  # double
    if utilization < 0.85 and queue_frac < 0.3:
        return 3  # gentle increase
    return 2      # hold


def generate_congestion_traces(
    n_sequences: int,
    config: CongestionTraceConfig | None = None,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Simulate flows through the bottleneck and label windows.

    Returns (sequences, actions): sequences is
    (n, window_steps, 5) with columns (queueing delay, delivery rate,
    send rate, cwnd, loss), each normalized; actions is (n,) integer
    indices into :data:`ACTIONS`.
    """
    if n_sequences <= 0:
        raise ValueError("n_sequences must be positive")
    cfg = config or CongestionTraceConfig()
    rng = np.random.default_rng(seed)

    capacity_pps = cfg.bottleneck_gbps * 1e9 / 8.0 / 1500.0
    step_s = cfg.step_ms / 1e3

    sequences = np.zeros((n_sequences, cfg.window_steps, 5))
    actions = np.zeros(n_sequences, dtype=np.int64)

    for i in range(n_sequences):
        # Randomize competing load and starting state per sequence.
        cross_load = rng.uniform(0.0, 0.9)
        cwnd = rng.uniform(4.0, 128.0)
        queue = rng.uniform(0.0, cfg.buffer_pkts * 0.7)
        rtt_s = cfg.base_rtt_ms / 1e3
        for t in range(cfg.window_steps):
            send_pps = cwnd / max(rtt_s, 1e-6)
            avail = capacity_pps * (1.0 - cross_load)
            arriving = send_pps * step_s
            serviced = avail * step_s
            queue = queue + arriving - serviced
            loss = 0.0
            if queue > cfg.buffer_pkts:
                loss = (queue - cfg.buffer_pkts) / max(arriving, 1e-9)
                queue = float(cfg.buffer_pkts)
            queue = max(queue, 0.0)
            q_delay_s = queue / max(avail, 1e-9)
            rtt_s = cfg.base_rtt_ms / 1e3 + q_delay_s
            delivery = min(send_pps, avail)
            sequences[i, t] = (
                q_delay_s * 1e3,                # queueing delay, ms
                delivery / capacity_pps,        # normalized delivery rate
                send_pps / capacity_pps,        # normalized send rate
                cwnd / 256.0,                   # normalized cwnd
                min(loss, 1.0),
            )
            # The sender itself follows a noisy AIMD during data collection.
            if loss > 0:
                cwnd = max(2.0, cwnd * 0.5)
            else:
                cwnd += rng.uniform(0.0, 2.0)
        queue_frac = queue / cfg.buffer_pkts
        utilization = float(sequences[i, -1, 1])
        actions[i] = oracle_action(queue_frac, float(sequences[i, -1, 4]), utilization)
    return sequences, actions


def congestion_packet_trace(
    n_packets: int,
    config: CongestionTraceConfig | None = None,
    seed: int = 0,
    n_flows: int = 64,
    offered_gbps: float = 1.0,
):
    """Observation windows as a packet trace for the multi-app fabric.

    Each packet's feature payload is one flattened ``(window_steps, 5)``
    observation window (time-major, the layout
    :func:`~repro.mapreduce.frontend.lstm_graph` consumes) and its label
    is the oracle's action index — so replaying the trace through a
    congestion app scores per-packet cwnd decisions the way the anomaly
    trace scores detections.  Packets spread over ``n_flows`` synthetic
    five-tuples with jittered arrivals, giving the flow-consistent
    sharder real work.
    """
    from .packets import FlowSpec, PacketRecord, PacketTrace

    if n_packets <= 0:
        raise ValueError("n_packets must be positive")
    if n_flows <= 0:
        raise ValueError("n_flows must be positive")
    cfg = config or CongestionTraceConfig()
    sequences, actions = generate_congestion_traces(n_packets, cfg, seed=seed)
    features = sequences.reshape(n_packets, -1)

    rng = np.random.default_rng(seed + 0x5EED)
    five_tuples = [
        (
            int(rng.integers(0, 2**32)),
            int(rng.integers(0, 2**32)),
            int(rng.integers(1024, 65535)),
            int(rng.choice([80, 443, 4242, 9000])),
            int(rng.choice([0, 1])),
        )
        for __ in range(n_flows)
    ]
    flow_of = rng.integers(0, n_flows, size=n_packets)
    sizes = rng.integers(200, 1500, size=n_packets)
    # Arrivals: each packet's exponential gap is scaled by its own wire
    # size, so the stream's realized bytes/second matches ``offered_gbps``
    # in expectation (the recorded rate stays honest).
    gaps = rng.exponential(1.0, size=n_packets) * (
        sizes * 8.0 / (offered_gbps * 1e9)
    )
    times = np.cumsum(gaps)

    seq_in_flow = np.zeros(n_flows, dtype=np.int64)
    packets = []
    for i in range(n_packets):
        fid = int(flow_of[i])
        packets.append(
            PacketRecord(
                time=float(times[i]),
                flow_id=fid,
                five_tuple=five_tuples[fid],
                size_bytes=int(sizes[i]),
                features=features[i],
                label=int(actions[i]),
                attack_type=0,
                seq_in_flow=int(seq_in_flow[fid]),
            )
        )
        seq_in_flow[fid] += 1
    flows = [
        FlowSpec(
            flow_id=fid,
            five_tuple=five_tuples[fid],
            n_packets=int(seq_in_flow[fid]),
            mean_size=850.0,
            features=np.zeros(features.shape[1]),
            label=0,
            attack_type=0,
            start_time=0.0,
        )
        for fid in range(n_flows)
    ]
    return PacketTrace(
        packets=packets,
        flows=flows,
        duration=float(times[-1]),
        offered_gbps=offered_gbps,
    )
