"""Synthetic dataset substrates (NSL-KDD-like, IoT, congestion traces)."""

from .congestion import (
    ACTIONS,
    CongestionTraceConfig,
    congestion_packet_trace,
    generate_congestion_traces,
    oracle_action,
)
from .iot import (
    IOT_BINARY_FEATURES,
    IOT_CLUSTER_FEATURES,
    iot_binary_dataset,
    iot_cluster_dataset,
    iot_packet_trace,
)
from .nslkdd import (
    ATTACK_CLASSES,
    DNN_FEATURES,
    FEATURE_NAMES,
    SVM_FEATURES,
    ConnectionDataset,
    dnn_feature_matrix,
    generate_connections,
    svm_feature_matrix,
)
from .packets import (
    FlowSpec,
    PacketRecord,
    PacketTrace,
    TraceColumns,
    expand_to_packets,
)

__all__ = [
    "ACTIONS",
    "CongestionTraceConfig",
    "congestion_packet_trace",
    "generate_congestion_traces",
    "oracle_action",
    "IOT_BINARY_FEATURES",
    "IOT_CLUSTER_FEATURES",
    "iot_binary_dataset",
    "iot_cluster_dataset",
    "iot_packet_trace",
    "ATTACK_CLASSES",
    "DNN_FEATURES",
    "FEATURE_NAMES",
    "SVM_FEATURES",
    "ConnectionDataset",
    "dnn_feature_matrix",
    "generate_connections",
    "svm_feature_matrix",
    "FlowSpec",
    "PacketRecord",
    "PacketTrace",
    "TraceColumns",
    "expand_to_packets",
]
