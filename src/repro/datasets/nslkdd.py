"""Synthetic NSL-KDD-like connection records.

The paper "generate[s] labeled packet-level traces from the NSL-KDD dataset
by expanding connection-level records to binned packet traces" (5.2.2).  The
real dataset is not redistributable here, so we synthesize connection
records from parameterized per-class feature distributions that preserve the
properties the experiments depend on:

* the NSL-KDD attack taxonomy (DoS, Probe, R2L, U2R vs benign),
* heterogeneous separability — DoS floods are easy to spot, R2L/U2R are
  famously near-indistinguishable from benign traffic, which is what keeps
  the paper's offline F1 at ~0.71 rather than ~1.0,
* heavy-tailed byte/duration distributions (log-transformable, Section 3.1),
* the 6-feature subset used by the Tang et al. DNN and the 8-feature subset
  used by the SVM.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "ATTACK_CLASSES",
    "ConnectionDataset",
    "generate_connections",
    "dnn_feature_matrix",
    "svm_feature_matrix",
    "FEATURE_NAMES",
    "DNN_FEATURES",
    "SVM_FEATURES",
]

#: Class labels. Index 0 is benign; the rest are NSL-KDD attack categories.
ATTACK_CLASSES = ("benign", "dos", "probe", "r2l", "u2r")

#: Full synthetic feature schema (a tractable NSL-KDD subset).
FEATURE_NAMES = (
    "duration",        # seconds
    "protocol",        # 0 tcp / 1 udp / 2 icmp
    "service",         # categorical service id (0..9)
    "src_bytes",
    "dst_bytes",
    "count",           # connections to same host in window
    "srv_count",       # connections to same service in window
    "urgent",          # urgent-flag packets
    "serror_rate",     # SYN-error rate
    "same_srv_rate",
    "wrong_fragment",
    "dst_host_count",
)

#: Tang et al. use six KDD features for the anomaly DNN.
DNN_FEATURES = (
    "duration",
    "src_bytes",
    "dst_bytes",
    "count",
    "srv_count",
    "serror_rate",
)

#: Mehmood & Rais select eight features via ACO for the SVM.
SVM_FEATURES = (
    "duration",
    "src_bytes",
    "dst_bytes",
    "count",
    "srv_count",
    "serror_rate",
    "same_srv_rate",
    "urgent",
)


@dataclass
class ConnectionDataset:
    """Connection-level records with labels.

    ``features`` is (n, len(FEATURE_NAMES)) raw (untransformed) values,
    ``labels`` is binary (1 = anomalous), and ``attack_types`` holds the
    class index into :data:`ATTACK_CLASSES`.
    """

    features: np.ndarray
    labels: np.ndarray
    attack_types: np.ndarray

    def __len__(self) -> int:
        return len(self.features)

    def column(self, name: str) -> np.ndarray:
        """Raw values of one named feature."""
        return self.features[:, FEATURE_NAMES.index(name)]

    def split(self, train_fraction: float, rng: np.random.Generator):
        """Shuffled (train, test) split."""
        if not 0.0 < train_fraction < 1.0:
            raise ValueError("train_fraction must be in (0, 1)")
        order = rng.permutation(len(self))
        cut = int(len(self) * train_fraction)
        train_idx, test_idx = order[:cut], order[cut:]
        return (
            ConnectionDataset(
                self.features[train_idx], self.labels[train_idx], self.attack_types[train_idx]
            ),
            ConnectionDataset(
                self.features[test_idx], self.labels[test_idx], self.attack_types[test_idx]
            ),
        )


# Per-class generative parameters.  Columns are lognormal medians (for the
# heavy-tailed features) or Beta/deterministic parameters (rates, flags).
# Separability knob: DoS sits far from benign on count/serror_rate,
# Probe is moderate, R2L/U2R nearly overlap benign.
_CLASS_MIX = {"dos": 0.38, "probe": 0.20, "r2l": 0.29, "u2r": 0.13}


def _lognormal(rng, median: float, sigma: float, n: int) -> np.ndarray:
    return rng.lognormal(mean=np.log(median + 1e-9), sigma=sigma, size=n)


def _sample_class(rng: np.random.Generator, cls: str, n: int) -> np.ndarray:
    """Sample ``n`` raw feature rows for one traffic class."""
    feats = np.zeros((n, len(FEATURE_NAMES)))

    def put(name: str, values: np.ndarray) -> None:
        feats[:, FEATURE_NAMES.index(name)] = values

    if cls == "benign":
        put("duration", _lognormal(rng, 8.0, 1.6, n))
        put("protocol", rng.choice([0, 1, 2], size=n, p=[0.75, 0.22, 0.03]))
        put("service", rng.integers(0, 10, size=n))
        put("src_bytes", _lognormal(rng, 900.0, 1.7, n))
        put("dst_bytes", _lognormal(rng, 2400.0, 1.9, n))
        put("count", _lognormal(rng, 6.0, 0.9, n))
        put("srv_count", _lognormal(rng, 5.0, 0.9, n))
        put("urgent", (rng.random(n) < 0.01).astype(float))
        put("serror_rate", rng.beta(1.2, 28.0, size=n))
        put("same_srv_rate", rng.beta(9.0, 3.0, size=n))
        put("wrong_fragment", np.zeros(n))
        put("dst_host_count", _lognormal(rng, 24.0, 0.8, n))
    elif cls == "dos":
        # Floods: huge connection counts, high SYN-error rates, tiny payloads.
        put("duration", _lognormal(rng, 0.6, 1.2, n))
        put("protocol", rng.choice([0, 1, 2], size=n, p=[0.7, 0.1, 0.2]))
        put("service", rng.integers(0, 10, size=n))
        put("src_bytes", _lognormal(rng, 90.0, 1.0, n))
        put("dst_bytes", _lognormal(rng, 25.0, 1.3, n))
        put("count", _lognormal(rng, 160.0, 0.7, n))
        put("srv_count", _lognormal(rng, 130.0, 0.7, n))
        put("urgent", (rng.random(n) < 0.02).astype(float))
        put("serror_rate", rng.beta(14.0, 2.0, size=n))
        put("same_srv_rate", rng.beta(2.0, 6.0, size=n))
        put("wrong_fragment", (rng.random(n) < 0.25).astype(float))
        put("dst_host_count", _lognormal(rng, 150.0, 0.6, n))
    elif cls == "probe":
        # Scans: many short connections across services, moderate error rate.
        put("duration", _lognormal(rng, 1.6, 1.4, n))
        put("protocol", rng.choice([0, 1, 2], size=n, p=[0.55, 0.2, 0.25]))
        put("service", rng.integers(0, 10, size=n))
        put("src_bytes", _lognormal(rng, 200.0, 1.5, n))
        put("dst_bytes", _lognormal(rng, 260.0, 1.8, n))
        put("count", _lognormal(rng, 16.0, 1.1, n))
        put("srv_count", _lognormal(rng, 7.0, 1.1, n))
        put("urgent", (rng.random(n) < 0.015).astype(float))
        put("serror_rate", rng.beta(2.2, 11.0, size=n))
        put("same_srv_rate", rng.beta(2.5, 5.0, size=n))
        put("wrong_fragment", (rng.random(n) < 0.05).astype(float))
        put("dst_host_count", _lognormal(rng, 80.0, 0.9, n))
    elif cls == "r2l":
        # Remote-to-local: looks like benign interactive traffic.
        put("duration", _lognormal(rng, 10.0, 1.6, n))
        put("protocol", rng.choice([0, 1, 2], size=n, p=[0.85, 0.13, 0.02]))
        put("service", rng.integers(0, 10, size=n))
        put("src_bytes", _lognormal(rng, 1100.0, 1.7, n))
        put("dst_bytes", _lognormal(rng, 2100.0, 1.9, n))
        put("count", _lognormal(rng, 7.0, 0.9, n))
        put("srv_count", _lognormal(rng, 5.5, 0.9, n))
        put("urgent", (rng.random(n) < 0.06).astype(float))
        put("serror_rate", rng.beta(1.5, 24.0, size=n))
        put("same_srv_rate", rng.beta(8.0, 3.2, size=n))
        put("wrong_fragment", np.zeros(n))
        put("dst_host_count", _lognormal(rng, 26.0, 0.8, n))
    elif cls == "u2r":
        # User-to-root: tiny class, nearly identical to benign shells.
        put("duration", _lognormal(rng, 9.0, 1.5, n))
        put("protocol", np.zeros(n))
        put("service", rng.integers(0, 10, size=n))
        put("src_bytes", _lognormal(rng, 1000.0, 1.6, n))
        put("dst_bytes", _lognormal(rng, 2300.0, 1.8, n))
        put("count", _lognormal(rng, 6.5, 0.9, n))
        put("srv_count", _lognormal(rng, 5.0, 0.9, n))
        put("urgent", (rng.random(n) < 0.10).astype(float))
        put("serror_rate", rng.beta(1.4, 26.0, size=n))
        put("same_srv_rate", rng.beta(8.5, 3.0, size=n))
        put("wrong_fragment", np.zeros(n))
        put("dst_host_count", _lognormal(rng, 23.0, 0.8, n))
    else:  # pragma: no cover - guarded by caller
        raise ValueError(f"unknown class {cls!r}")
    return feats


def generate_connections(
    n: int, anomaly_fraction: float = 0.45, seed: int = 0
) -> ConnectionDataset:
    """Generate ``n`` connection records.

    ``anomaly_fraction`` matches NSL-KDD's roughly balanced train split
    (~46% attacks); the attack mix follows :data:`_CLASS_MIX`.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if not 0.0 <= anomaly_fraction <= 1.0:
        raise ValueError("anomaly_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    n_attack = int(round(n * anomaly_fraction))
    n_benign = n - n_attack
    blocks = [_sample_class(rng, "benign", n_benign)]
    attack_types = [np.zeros(n_benign, dtype=np.int64)]
    remaining = n_attack
    for idx, (cls, frac) in enumerate(_CLASS_MIX.items(), start=1):
        count = int(round(n_attack * frac)) if idx < len(_CLASS_MIX) else remaining
        count = min(count, remaining)
        remaining -= count
        if count:
            blocks.append(_sample_class(rng, cls, count))
            attack_types.append(np.full(count, idx, dtype=np.int64))
    features = np.vstack(blocks)
    types = np.concatenate(attack_types)
    labels = (types > 0).astype(np.int64)
    order = rng.permutation(len(features))
    return ConnectionDataset(features[order], labels[order], types[order])


def _standardize(x: np.ndarray) -> np.ndarray:
    mean = x.mean(axis=0)
    std = x.std(axis=0)
    std[std == 0] = 1.0
    return (x - mean) / std


def _extract(dataset: ConnectionDataset, names: tuple[str, ...]) -> np.ndarray:
    cols = [dataset.column(name) for name in names]
    x = np.stack(cols, axis=1)
    # Section 3.1 feature engineering: log-compress heavy-tailed features so
    # a small fixed-point model can learn from them.
    heavy = {"duration", "src_bytes", "dst_bytes", "count", "srv_count", "dst_host_count"}
    for j, name in enumerate(names):
        if name in heavy:
            x[:, j] = np.log1p(x[:, j])
    return _standardize(x)


def dnn_feature_matrix(dataset: ConnectionDataset) -> np.ndarray:
    """The 6-feature DNN input matrix (log-compressed, standardized)."""
    return _extract(dataset, DNN_FEATURES)


def svm_feature_matrix(dataset: ConnectionDataset) -> np.ndarray:
    """The 8-feature SVM input matrix (log-compressed, standardized)."""
    return _extract(dataset, SVM_FEATURES)
