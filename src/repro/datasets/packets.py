"""Expansion of connection records into packet-level traces.

Section 5.2.2: "We generate labeled packet-level traces ... by expanding
connection-level records to binned packet traces (i.e., each trace element
represents a set of packets) and annotating them with their status
(anomalous or benign).  Flow-size distribution, mixing, and packet fields'
rates of change are sampled from the original traces to create a realistic
workload."

This module turns a :class:`~repro.datasets.nslkdd.ConnectionDataset` into a
time-ordered stream of :class:`PacketRecord` objects suitable for the PISA
pipeline and the end-to-end testbed.  Flows interleave (mixing), packet
sizes follow the connection's byte counts, and arrival times honour an
aggregate offered load in Gbps.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from .nslkdd import ConnectionDataset

__all__ = [
    "PacketRecord",
    "FlowSpec",
    "PacketTrace",
    "TraceColumns",
    "expand_to_packets",
]


@dataclass(frozen=True)
class PacketRecord:
    """One packet of a flow, with ground truth attached.

    ``features`` carries the flow's model-ready feature vector (what
    preprocessing MATs will reconstruct on the switch); ``label`` is the
    ground-truth anomaly bit used only for scoring.
    """

    time: float            # arrival time, seconds
    flow_id: int
    five_tuple: tuple      # (src_ip, dst_ip, src_port, dst_port, proto)
    size_bytes: int
    features: np.ndarray
    label: int
    attack_type: int
    seq_in_flow: int


@dataclass
class FlowSpec:
    """Per-flow ground truth used when expanding to packets."""

    flow_id: int
    five_tuple: tuple
    n_packets: int
    mean_size: float
    features: np.ndarray
    label: int
    attack_type: int
    start_time: float


#: Ethernet + IP + TCP/UDP header bytes assumed when splitting a packet's
#: wire size into headers + payload (mirrors ``repro.pisa.packet``).
HEADER_BYTES = 54


@dataclass
class TraceColumns:
    """Structure-of-arrays view of a packet stream.

    The columnar twin of a list of packets: one array per field, aligned by
    position.  This is what the batched PISA pipeline consumes — header
    fields feed the vectorized parser and MAT lookups, ``features`` streams
    through the MapReduce block in ``(B, D)`` chunks, and ``labels`` scores
    the run.  Header values are stored as int64 (wide enough for 32-bit
    fields); ``features`` rows for packets without a feature payload are
    zero with ``has_features`` False.
    """

    times: np.ndarray                      # float64 [N] arrival seconds
    sizes: np.ndarray                      # int64 [N] wire bytes
    payload_len: np.ndarray                # int64 [N]
    headers: dict[str, np.ndarray]         # int64 [N] per header field
    features: np.ndarray | None            # float64 [N, D] (None: no payloads)
    has_features: np.ndarray               # bool [N]
    labels: np.ndarray | None = None       # int64 [N] ground truth
    flow_ids: np.ndarray | None = None     # int64 [N]

    @property
    def n(self) -> int:
        return len(self.times)

    def __len__(self) -> int:
        return self.n

    def header(self, name: str) -> np.ndarray:
        """A header field column (zeros when the field never appears)."""
        col = self.headers.get(name)
        if col is None:
            return np.zeros(self.n, dtype=np.int64)
        return col

    def five_tuple_columns(self) -> tuple[np.ndarray, ...]:
        return tuple(
            self.header(name)
            for name in ("src_ip", "dst_ip", "src_port", "dst_port", "protocol")
        )

    def slice(self, sl: slice) -> "TraceColumns":
        """A zero-copy view of a contiguous packet range."""
        return TraceColumns(
            times=self.times[sl],
            sizes=self.sizes[sl],
            payload_len=self.payload_len[sl],
            headers={name: col[sl] for name, col in self.headers.items()},
            features=None if self.features is None else self.features[sl],
            has_features=self.has_features[sl],
            labels=None if self.labels is None else self.labels[sl],
            flow_ids=None if self.flow_ids is None else self.flow_ids[sl],
        )

    def take(self, order: np.ndarray) -> "TraceColumns":
        """Reindex every column by ``order`` (e.g. a time sort)."""
        return TraceColumns(
            times=self.times[order],
            sizes=self.sizes[order],
            payload_len=self.payload_len[order],
            headers={name: col[order] for name, col in self.headers.items()},
            features=None if self.features is None else self.features[order],
            has_features=self.has_features[order],
            labels=None if self.labels is None else self.labels[order],
            flow_ids=None if self.flow_ids is None else self.flow_ids[order],
        )

    # ------------------------------------------------------------------
    # Shard-aware views (the sharded runtime's partition key)
    # ------------------------------------------------------------------
    def shard_assignments(self, n_shards: int, slots: int) -> np.ndarray:
        """Per-packet shard ids, consistent with the flow-register slots.

        A packet's shard is its FNV-1a five-tuple hash modulo ``slots``
        (the register index the accumulator uses) modulo ``n_shards`` —
        so every packet touching a given register slot, hash-collision
        neighbours included, lands on the same shard and per-flow state
        stays shard-local.
        """
        if n_shards <= 0:
            raise ValueError("n_shards must be positive")
        if slots <= 0:
            raise ValueError("slots must be positive")
        from ..pisa.registers import fnv1a_columns  # local: avoids module cycle

        slot = fnv1a_columns(self.five_tuple_columns()) % np.uint64(slots)
        return (slot % np.uint64(n_shards)).astype(np.int64)

    def partition(
        self, assignments: np.ndarray, n_parts: int
    ) -> list[tuple[np.ndarray, "TraceColumns"]]:
        """Split into ``(global_indices, columns)`` per part id.

        Each part keeps its packets in original (arrival) order, so a
        stable per-part time sort reproduces the global stable sort's
        relative order within the part.
        """
        assignments = np.asarray(assignments)
        return [
            (indices, self.take(indices))
            for indices in (
                np.flatnonzero(assignments == part) for part in range(n_parts)
            )
        ]

    @classmethod
    def from_packets(cls, packets) -> "TraceColumns":
        """Build columns from pipeline :class:`~repro.pisa.packet.Packet`
        objects (duck-typed: ``headers``/``payload_len``/``arrival_time``/
        ``size_bytes``/``features``/``truth_label``/``flow_id``)."""
        n = len(packets)
        field_names: list[str] = []
        seen = set()
        for p in packets:
            for name in p.headers:
                if name not in seen:
                    seen.add(name)
                    field_names.append(name)
        headers = {
            name: np.fromiter(
                (int(p.headers.get(name, 0)) for p in packets), np.int64, n
            )
            for name in field_names
        }
        has_features = np.fromiter(
            (p.features is not None for p in packets), bool, n
        )
        features = None
        if has_features.any():
            dim = len(next(p.features for p in packets if p.features is not None))
            features = np.zeros((n, dim), dtype=np.float64)
            for i, p in enumerate(packets):
                if p.features is not None:
                    features[i] = p.features
        labels = np.fromiter(
            ((p.truth_label if p.truth_label is not None else -1) for p in packets),
            np.int64,
            n,
        )
        flow_ids = np.fromiter(
            ((p.flow_id if p.flow_id is not None else -1) for p in packets),
            np.int64,
            n,
        )
        return cls(
            times=np.fromiter((p.arrival_time for p in packets), np.float64, n),
            sizes=np.fromiter((p.size_bytes for p in packets), np.int64, n),
            payload_len=np.fromiter((p.payload_len for p in packets), np.int64, n),
            headers=headers,
            features=features,
            has_features=has_features,
            labels=labels,
            flow_ids=flow_ids,
        )


@dataclass
class PacketTrace:
    """A time-ordered packet stream plus its flow table.

    ``time_dilation`` > 1 means the materialized packets are a thinned
    representative sample of the real ``offered_gbps`` stream, with
    timestamps stretched accordingly: each materialized packet stands for
    ``time_dilation`` real packets.  This lets second-scale control-plane
    dynamics run against a tractable packet count while keeping the *real*
    telemetry sampling rate (consumers multiply their per-packet sampling
    probability by the dilation).
    """

    packets: list[PacketRecord]
    flows: list[FlowSpec]
    duration: float
    offered_gbps: float
    time_dilation: float = 1.0
    _columns: TraceColumns | None = field(default=None, repr=False, compare=False)
    _shard_views: dict = field(default_factory=dict, repr=False, compare=False)

    def __len__(self) -> int:
        return len(self.packets)

    def columns(self) -> TraceColumns:
        """The trace as a cached structure-of-arrays (built once).

        Header fields mirror :func:`repro.pisa.packet.from_record` so the
        batched pipeline sees bit-identical inputs to the scalar loop over
        converted packets: ``urgent_flag`` is 0, ``seq`` is the in-flow
        sequence number, and the payload is the wire size minus the 54
        header bytes (floored at zero).
        """
        if self._columns is None:
            packets = self.packets
            n = len(packets)
            payload = np.fromiter(
                (max(0, p.size_bytes - HEADER_BYTES) for p in packets), np.int64, n
            )
            tuples = [p.five_tuple for p in packets]
            headers = {
                "src_ip": np.fromiter((t[0] for t in tuples), np.int64, n),
                "dst_ip": np.fromiter((t[1] for t in tuples), np.int64, n),
                "src_port": np.fromiter((t[2] for t in tuples), np.int64, n),
                "dst_port": np.fromiter((t[3] for t in tuples), np.int64, n),
                "protocol": np.fromiter((t[4] for t in tuples), np.int64, n),
                "urgent_flag": np.zeros(n, dtype=np.int64),
                "seq": np.fromiter((p.seq_in_flow for p in packets), np.int64, n),
            }
            self._columns = TraceColumns(
                times=np.fromiter((p.time for p in packets), np.float64, n),
                # The pipeline's notion of wire size: headers + payload.
                sizes=payload + HEADER_BYTES,
                payload_len=payload,
                headers=headers,
                features=(
                    np.stack([p.features for p in packets])
                    if n
                    else np.zeros((0, 0), dtype=np.float64)
                ),
                has_features=np.ones(n, dtype=bool),
                labels=np.fromiter((p.label for p in packets), np.int64, n),
                flow_ids=np.fromiter((p.flow_id for p in packets), np.int64, n),
            )
        return self._columns

    def shard_columns(
        self, n_shards: int, slots: int
    ) -> list[tuple[np.ndarray, TraceColumns]]:
        """Cached flow-consistent partition of :meth:`columns`.

        Returns ``(global_indices, columns)`` per shard (see
        :meth:`TraceColumns.shard_assignments`); repeated sharded runs at
        the same geometry re-partition for free.
        """
        key = (int(n_shards), int(slots))
        if key not in self._shard_views:
            columns = self.columns()
            assignments = columns.shard_assignments(n_shards, slots)
            self._shard_views[key] = columns.partition(assignments, n_shards)
        return self._shard_views[key]

    @property
    def anomalous_fraction(self) -> float:
        if not self.packets:
            return 0.0
        return sum(p.label for p in self.packets) / len(self.packets)

    def total_bytes(self) -> int:
        return sum(p.size_bytes for p in self.packets)


def _five_tuple(rng: np.random.Generator, protocol: int) -> tuple:
    return (
        int(rng.integers(0, 2**32)),
        int(rng.integers(0, 2**32)),
        int(rng.integers(1024, 65535)),
        int(rng.choice([80, 443, 22, 53, 8080, 3306])),
        protocol,
    )


def expand_to_packets(
    dataset: ConnectionDataset,
    feature_matrix: np.ndarray | None = None,
    offered_gbps: float = 5.0,
    mean_flow_packets: float = 24.0,
    seed: int = 0,
    max_packets: int | None = None,
    time_dilation: float = 1.0,
    flow_span_fraction: float = 0.15,
) -> PacketTrace:
    """Expand connection records into an interleaved packet trace.

    Parameters
    ----------
    dataset:
        Connection-level records (one flow per record).
    feature_matrix:
        Model-ready features aligned with ``dataset``; defaults to the
        DNN 6-feature matrix.
    offered_gbps:
        Aggregate load; the testbed sends "traffic at a fixed 5 Gbps".
    mean_flow_packets:
        Mean packets per flow (geometric flow-size distribution — the
        heavy-tailed shape observed in datacenter traces).
    max_packets:
        Optional hard cap on emitted packets (truncates the tail).
    time_dilation:
        Stretch factor for timestamps (see :class:`PacketTrace`).
    flow_span_fraction:
        Median flow lifetime as a fraction of the trace duration
        (lognormal-spread per flow).  Short-lived flows are what make slow
        control planes miss packets: a rule installed after the flow ends
        detects nothing.
    """
    if time_dilation < 1.0:
        raise ValueError("time_dilation must be >= 1")
    if not 0.0 < flow_span_fraction <= 1.0:
        raise ValueError("flow_span_fraction must be in (0, 1]")
    if offered_gbps <= 0:
        raise ValueError("offered_gbps must be positive")
    from .nslkdd import dnn_feature_matrix  # local import avoids cycle at import time

    rng = np.random.default_rng(seed)
    feats = feature_matrix if feature_matrix is not None else dnn_feature_matrix(dataset)
    if len(feats) != len(dataset):
        raise ValueError("feature matrix is not aligned with the dataset")

    n_flows = len(dataset)
    # Geometric flow sizes: many mice, few elephants.
    sizes = rng.geometric(p=1.0 / mean_flow_packets, size=n_flows)
    src_bytes = dataset.column("src_bytes")
    protocols = dataset.column("protocol").astype(int)

    total_packets = int(sizes.sum())
    if max_packets is not None:
        total_packets = min(total_packets, max_packets)
    # Per-flow mean packet size: a datacenter-like bimodal mix — bulky MTU
    # segments for data-heavy flows, minimum-size packets for chatty/attack
    # flows (scaled by the connection's per-packet byte budget).
    bytes_per_pkt = src_bytes / np.maximum(sizes, 1)
    mean_sizes = np.clip(
        np.where(
            bytes_per_pkt > 300.0,
            rng.lognormal(np.log(1100.0), 0.25, size=n_flows),
            rng.lognormal(np.log(350.0), 0.5, size=n_flows),
        ),
        64,
        1500,
    )
    aggregate_pps = offered_gbps * 1e9 / 8.0 / float(np.mean(mean_sizes))
    duration = total_packets / aggregate_pps

    # Flows start uniformly over the trace (mixing); packets within a flow
    # arrive with exponential gaps scaled so the flow spans a plausible time.
    flows: list[FlowSpec] = []
    start_times = np.sort(rng.uniform(0.0, duration, size=n_flows))
    for i in range(n_flows):
        flows.append(
            FlowSpec(
                flow_id=i,
                five_tuple=_five_tuple(rng, protocols[i]),
                n_packets=int(sizes[i]),
                mean_size=float(mean_sizes[i]),
                features=feats[i],
                label=int(dataset.labels[i]),
                attack_type=int(dataset.attack_types[i]),
                start_time=float(start_times[i]),
            )
        )

    # Merge per-flow packet streams by arrival time with a heap.  Each
    # flow's packets spread over its own (lognormal) lifetime.
    heap: list[tuple[float, int, int]] = []  # (time, flow_id, seq)
    spans = duration * flow_span_fraction * rng.lognormal(0.0, 0.8, size=n_flows)
    gaps = {}
    for flow in flows:
        gaps[flow.flow_id] = spans[flow.flow_id] / max(flow.n_packets, 1)
        heapq.heappush(heap, (flow.start_time, flow.flow_id, 0))

    packets: list[PacketRecord] = []
    while heap and len(packets) < total_packets:
        time, fid, seq = heapq.heappop(heap)
        flow = flows[fid]
        size = int(np.clip(rng.normal(flow.mean_size, flow.mean_size * 0.2), 64, 1500))
        packets.append(
            PacketRecord(
                time=time,
                flow_id=fid,
                five_tuple=flow.five_tuple,
                size_bytes=size,
                features=flow.features,
                label=flow.label,
                attack_type=flow.attack_type,
                seq_in_flow=seq,
            )
        )
        if seq + 1 < flow.n_packets:
            gap = rng.exponential(gaps[fid])
            heapq.heappush(heap, (time + gap, fid, seq + 1))

    packets.sort(key=lambda p: p.time)
    if time_dilation != 1.0:
        packets = [
            PacketRecord(
                time=p.time * time_dilation,
                flow_id=p.flow_id,
                five_tuple=p.five_tuple,
                size_bytes=p.size_bytes,
                features=p.features,
                label=p.label,
                attack_type=p.attack_type,
                seq_in_flow=p.seq_in_flow,
            )
            for p in packets
        ]
        for flow in flows:
            flow.start_time *= time_dilation
    actual_duration = packets[-1].time if packets else 0.0
    return PacketTrace(
        packets=packets,
        flows=flows,
        duration=actual_duration,
        offered_gbps=offered_gbps,
        time_dilation=time_dilation,
    )
