"""Repo-wide pytest configuration: tier-1-safe markers and opt-in knobs.

Tier-1 (``PYTHONPATH=src python -m pytest -x -q``) must stay fast, so heavy
benchmarks are opt-in: tests marked ``bench`` are skipped unless
``--runbench`` is passed.  Tests marked ``smoke`` are the fast, always-on
counterparts that keep the same code paths covered in tier-1.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--runbench",
        action="store_true",
        default=False,
        help="run opt-in heavy benchmarks (tests marked 'bench')",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "bench: heavy opt-in benchmark (skipped without --runbench)"
    )
    config.addinivalue_line(
        "markers", "smoke: tier-1-safe fast check of a benchmark code path"
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--runbench"):
        return
    skip_bench = pytest.mark.skip(reason="heavy benchmark: pass --runbench to run")
    for item in items:
        if "bench" in item.keywords:
            item.add_marker(skip_bench)
