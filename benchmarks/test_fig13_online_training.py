"""Figure 13: online-training convergence vs telemetry sampling rate.

Paper shape: higher sampling rates converge in tens-to-hundreds of
milliseconds; the lowest rate (1e-5) barely moves within the 10 s window.
"""

from repro.core import render_table, series_to_text, write_result
from repro.testbed import OnlineTrainer

RATES = (1e-5, 1e-4, 1e-3, 1e-2)


def test_fig13(benchmark, split):
    train, test = split
    trainer = OnlineTrainer(
        train_pool=train, test_pool=test, packet_rate_pps=500_000, seed=1
    )

    def sweep():
        return {
            rate: trainer.run(rate, batch_size=64, epochs=1, horizon_s=10.0,
                              max_updates=150)
            for rate in RATES
        }

    curves = benchmark.pedantic(sweep, rounds=1, iterations=1)
    target = 66.0
    rows = []
    for rate in RATES:
        curve = curves[rate]
        reach = trainer.time_to_reach(curve, target)
        rows.append(
            [f"{rate:.0e}", f"{curve[0].f1_percent:.1f}",
             f"{curve[-1].f1_percent:.1f}",
             f"{reach:.3f}s" if reach is not None else ">10s",
             len(curve) - 1]
        )
    table = render_table(
        f"Figure 13: F1 convergence vs sampling rate (time to F1 >= {target})",
        ["sampling", "start_f1", "final_f1", "time_to_target", "updates"],
        rows,
    )
    print("\n" + table)
    write_result("fig13_online_training", table)
    series = {
        f"{rate:.0e}": [(p.time_s, p.f1_percent) for p in curves[rate]]
        for rate in RATES
    }
    write_result("fig13_series", series_to_text("fig13 F1 vs time", series))

    # Higher sampling -> earlier convergence (strictly ordered times).
    times = []
    for rate in RATES:
        t = trainer.time_to_reach(curves[rate], target)
        times.append(t if t is not None else float("inf"))
    assert times[3] < times[2] < times[1] <= times[0]
    # The fastest rate converges within hundreds of milliseconds.
    assert times[3] < 0.5
    # Every rate that converges improves over its starting F1.
    for rate in RATES[1:]:
        assert curves[rate][-1].f1_percent > curves[rate][0].f1_percent
