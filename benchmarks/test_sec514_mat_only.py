"""Section 5.1.4: MAT-only ML (N2Net, IIsy) vs Taurus iso-area cost.

Paper: N2Net needs ~12 MATs/layer (48 for the anomaly DNN); IIsy uses 8
MATs for an SVM and 2 for KMeans; one Taurus MapReduce block displaces ~3
MATs and runs the full-precision DNN.
"""

import numpy as np

from repro.baselines import (
    BinarizedDNN,
    iisy_mat_cost,
    n2net_mat_cost,
    taurus_iso_area_mats,
)
from repro.core import render_table, write_result
from repro.datasets import dnn_feature_matrix
from repro.ml import f1_score


def test_mat_cost_comparison(benchmark):
    def costs():
        return {
            "N2Net BNN (anomaly DNN)": n2net_mat_cost(4).n_mats,
            "IIsy SVM": iisy_mat_cost("svm").n_mats,
            "IIsy KMeans": iisy_mat_cost("kmeans").n_mats,
            "Taurus block (iso-area)": taurus_iso_area_mats(),
        }

    results = benchmark(costs)
    rows = [[name, f"{mats:.1f}"] for name, mats in results.items()]
    table = render_table(
        "Section 5.1.4: MAT-stage cost of in-network ML",
        ["scheme", "MATs"],
        rows,
    )
    print("\n" + table)
    write_result("sec514_mat_only", table)
    assert results["N2Net BNN (anomaly DNN)"] == 48
    assert results["Taurus block (iso-area)"] < 3.5
    assert results["N2Net BNN (anomaly DNN)"] / results["Taurus block (iso-area)"] > 10


def test_bnn_accuracy_penalty(benchmark, anomaly_dnn, anomaly_q, split):
    """N2Net's binarization is imprecise; Taurus keeps fix8 fidelity."""
    train, test = split
    x_train = dnn_feature_matrix(train)
    x_test = dnn_feature_matrix(test)

    def build_and_score():
        bnn = BinarizedDNN(anomaly_dnn)
        bnn.calibrate(x_train, train.labels)
        return f1_score(test.labels, bnn.predict(x_test))

    bnn_f1 = benchmark(build_and_score)
    fix8_pred = (anomaly_q(x_test).reshape(-1) >= 0.5).astype(np.int64)
    fix8_f1 = f1_score(test.labels, fix8_pred)
    table = render_table(
        "Section 5.1.4: accuracy cost of binarization (anomaly detection F1)",
        ["implementation", "F1", "MATs/area"],
        [
            ["N2Net BNN on MATs", f"{bnn_f1:.3f}", "48 MATs"],
            ["Taurus fix8 DNN", f"{fix8_f1:.3f}", "~3 MATs iso-area"],
        ],
    )
    print("\n" + table)
    write_result("sec514_bnn_accuracy", table)
    assert fix8_f1 > bnn_f1
