"""Table 8: end-to-end anomaly detection — control-plane baseline vs Taurus.

Paper shape: baseline batch sizes grow 1 -> ~3000 with sampling rate;
per-batch latency grows ~34 ms -> ~512 ms; baseline detection peaks at a
middling sampling rate (2.55% at 1e-4) and *collapses* at higher rates as
the pipeline destabilizes; Taurus detects 58.2% with F1 71.1 at every rate
— two orders of magnitude more events.
"""

import pytest

from repro.core import render_table, write_result
from repro.testbed import DEFAULT_SAMPLING_RATES

PAPER = {  # rate: (batch, all_ms, detected%, f1)
    1e-5: (1, 34, 0.781, 1.549),
    1e-4: (2, 41, 2.553, 4.944),
    1e-3: (17, 95, 0.015, 0.031),
    1e-2: (2935, 512, 0.000, 0.001),
}


def test_table8(benchmark, experiment):
    rows_data = benchmark.pedantic(
        lambda: experiment.run(DEFAULT_SAMPLING_RATES), rounds=1, iterations=1
    )
    rows = []
    for row in rows_data:
        b, t = row.baseline, row.taurus
        paper_batch, paper_all, paper_det, paper_f1 = PAPER[row.sampling_rate]
        rows.append(
            [f"{row.sampling_rate:.0e}",
             f"{b.mean_batch:.0f}", f"({paper_batch})",
             f"{b.xdp_ms:.0f}", f"{b.db_ms:.0f}", f"{b.ml_ms:.0f}",
             f"{b.install_ms:.0f}", f"{b.total_ms:.0f}", f"({paper_all})",
             f"{b.detected_percent:.3f}", f"({paper_det})",
             f"{t.detected_percent:.1f}", "(58.2)",
             f"{b.f1_percent:.3f}", f"({paper_f1})",
             f"{t.f1_percent:.1f}", "(71.1)"]
        )
    table = render_table(
        "Table 8: baseline vs Taurus (measured, paper in parens)",
        ["sampling", "batch", "p", "xdp", "db", "ml", "inst", "all", "p",
         "det_base%", "p", "det_taurus%", "p", "f1_base", "p", "f1_taurus", "p"],
        rows,
    )
    print("\n" + table)
    write_result("table8_end_to_end", table)

    by_rate = {r.sampling_rate: r for r in rows_data}
    # Batch sizes grow monotonically with sampling rate.
    batches = [by_rate[r].baseline.mean_batch for r in DEFAULT_SAMPLING_RATES]
    assert batches == sorted(batches)
    assert batches[0] < 5 and batches[-1] > 500
    # Total latency grows with load; ms-scale at the bottom.
    totals = [by_rate[r].baseline.total_ms for r in DEFAULT_SAMPLING_RATES]
    assert totals == sorted(totals)
    assert 20 < totals[0] < 60
    # Non-monotone baseline detection: peak in the middle, collapse at 1e-2.
    det = {r: by_rate[r].baseline.detected_percent for r in DEFAULT_SAMPLING_RATES}
    assert det[1e-4] > det[1e-5]
    assert det[1e-2] < det[1e-4]
    assert det[1e-2] < 0.5
    # Taurus: constant, full-model-accuracy detection, 2 orders of magnitude
    # above the baseline at every sampling rate.
    for rate in DEFAULT_SAMPLING_RATES:
        taurus = by_rate[rate].taurus
        assert taurus.detected_percent == pytest.approx(
            by_rate[1e-5].taurus.detected_percent
        )
        assert taurus.detected_percent > 50.0
        assert taurus.f1_percent > 60.0
        assert by_rate[rate].detection_advantage > 25


def test_table8_dataplane_equivalence(experiment):
    """The vectorized scoring path is bit-identical to fabric execution."""
    assert experiment.verify_dataplane()
