"""Table 2: unbatched anomaly-DNN inference latency on control-plane
accelerators (Broadwell Xeon 0.67 ms, Tesla T4 1.15 ms, Cloud TPU 3.51 ms).
"""

import pytest

from repro.baselines import ACCELERATORS, CPU_XEON
from repro.core import render_table, write_result

PAPER_MS = {"Broadwell Xeon": 0.67, "Tesla T4 GPU": 1.15, "Cloud TPU v2-8": 3.51}


def test_table2(benchmark):
    latencies = benchmark(
        lambda: {name: model.latency_ms(1) for name, model in ACCELERATORS.items()}
    )
    rows = [
        [name, f"{latencies[name]:.2f}", f"{PAPER_MS[name]:.2f}"]
        for name in PAPER_MS
    ]
    table = render_table(
        "Table 2: unbatched inference latency (ms)",
        ["accelerator", "measured", "paper"],
        rows,
    )
    print("\n" + table)
    write_result("table2_accelerators", table)
    for name, paper in PAPER_MS.items():
        assert latencies[name] == pytest.approx(paper, rel=0.05)
    # Ordering: CPU < GPU < TPU for batch-1 (setup-dominated).
    assert latencies["Broadwell Xeon"] < latencies["Tesla T4 GPU"]
    assert latencies["Tesla T4 GPU"] < latencies["Cloud TPU v2-8"]


def test_table2_batching_crossover(benchmark):
    """Extension: the GPU/TPU win back throughput at large batches — the
    batching-vs-latency tension Section 2.1.2 describes."""

    def per_item():
        return {
            name: model.per_item_ms(1024) for name, model in ACCELERATORS.items()
        }

    amortized = benchmark(per_item)
    assert amortized["Tesla T4 GPU"] < CPU_XEON.per_item_ms(1)
