"""Scalar vs batched execution of the CGRA dataflow graph.

Not a paper table: this records the *simulator's* throughput so the repo's
perf trajectory is visible across PRs.  The scalar interpreter walks the
graph once per packet in Python; the batched interpreter
(:meth:`DataflowGraph.execute_batch`) streams a ``(B, D)`` block through
the same nodes in one pass.  The smoke variant runs in tier-1; the full
150k-packet variant is opt-in via ``--runbench``.  Both update
``BENCH_graph_batch.json``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import render_table, write_result
from repro.mapreduce import dnn_graph
from repro.testbed.dataplane import DEFAULT_CHUNK_SIZE


def _measure(graph, feats: np.ndarray, scalar_sample: int) -> dict:
    """Packets/sec: scalar loop (sampled) vs the chunked streamed pass."""
    sample = feats[:scalar_sample]
    t0 = time.perf_counter()
    scalar_out = np.stack([graph.execute(row) for row in sample])
    scalar_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    batch_out = np.concatenate(
        [
            graph.execute_batch(feats[start : start + DEFAULT_CHUNK_SIZE])
            for start in range(0, len(feats), DEFAULT_CHUNK_SIZE)
        ]
    )
    batch_s = time.perf_counter() - t0
    assert np.array_equal(batch_out[: len(sample)], scalar_out), (
        "batched execution diverged from the scalar interpreter"
    )
    scalar_pps = len(sample) / max(scalar_s, 1e-12)
    batch_pps = len(feats) / max(batch_s, 1e-12)
    return {
        "n_packets": int(len(feats)),
        "chunk_size": int(DEFAULT_CHUNK_SIZE),
        "scalar_sample": int(len(sample)),
        "scalar_pkt_per_s": float(scalar_pps),
        "batch_pkt_per_s": float(batch_pps),
        "speedup": float(batch_pps / scalar_pps),
    }


def _report(rows: dict[str, dict]) -> None:
    table = render_table(
        "Graph execution throughput: scalar interpreter vs execute_batch",
        ["run", "packets", "scalar pkt/s", "batch pkt/s", "speedup"],
        [
            [name, r["n_packets"], f"{r['scalar_pkt_per_s']:.3g}",
             f"{r['batch_pkt_per_s']:.3g}", f"{r['speedup']:.0f}x"]
            for name, r in rows.items()
        ],
    )
    print("\n" + table)
    write_result("graph_batch_throughput", table)


@pytest.mark.smoke
def test_graph_batch_smoke(anomaly_q, split, bench_json):
    """Tier-1-safe: batched path is bit-identical and much faster."""
    __, test = split
    from repro.datasets import dnn_feature_matrix

    feats = dnn_feature_matrix(test)
    feats = np.tile(feats, (max(1, 8000 // len(feats)) + 1, 1))[:8000]
    graph = dnn_graph(anomaly_q, name="anomaly_dnn_exact", exact_activations=True)
    result = _measure(graph, feats, scalar_sample=256)
    bench_json("graph_batch", {"smoke": result})
    _report({"smoke (anomaly DNN)": result})
    assert result["speedup"] > 10


@pytest.mark.bench
def test_graph_batch_full_trace(experiment, bench_json):
    """Opt-in: the full end-to-end trace streamed through the graph path.

    Asserts the acceptance bar — full-trace equivalence, with the batched
    interpreter >= 50x the scalar one in packets/sec.
    """
    trace = experiment.workload.trace
    feats = np.stack([p.features for p in trace.packets])
    graph = experiment.dataplane.exact_block.graph
    result = _measure(graph, feats, scalar_sample=512)

    t0 = time.perf_counter()
    equivalent = experiment.dataplane.verify_equivalence(trace)
    verify_s = time.perf_counter() - t0
    assert equivalent, "full-trace graph-vs-quantized equivalence failed"
    result["full_trace_equivalence"] = True
    result["verify_equivalence_s"] = float(verify_s)

    bench_json("graph_batch", {"full_trace": result})
    _report({"full trace (anomaly DNN)": result})
    assert result["speedup"] >= 50
