"""Table 4: per-FU area/power scaling with datapath precision
(fix8 670 um^2 / 456 uW; fix16 1338/887; fix32 2949/2341 at 16 lanes,
4 stages)."""

import pytest

from repro.core import render_table, write_result
from repro.hw import CUGeometry, fu_area_um2, fu_power_uw

PAPER = {"fix8": (670, 456), "fix16": (1338, 887), "fix32": (2949, 2341)}


def test_table4(benchmark):
    def sweep():
        return {
            prec: (fu_area_um2(CUGeometry(16, 4, prec)), fu_power_uw(CUGeometry(16, 4, prec)))
            for prec in PAPER
        }

    results = benchmark(sweep)
    rows = [
        [prec, f"{area:.0f}", f"{PAPER[prec][0]}", f"{power:.0f}", f"{PAPER[prec][1]}"]
        for prec, (area, power) in results.items()
    ]
    table = render_table(
        "Table 4: per-FU area (um^2) and power (uW) at 16 lanes x 4 stages",
        ["precision", "area", "paper_area", "power", "paper_power"],
        rows,
    )
    print("\n" + table)
    write_result("table4_precision", table)
    for prec, (paper_area, paper_power) in PAPER.items():
        area, power = results[prec]
        assert area == pytest.approx(paper_area, rel=0.02)
        assert power == pytest.approx(paper_power, rel=0.02)
    # 4x the bits costs ~4.4x the area (multiplier-dominated).
    assert results["fix32"][0] / results["fix8"][0] == pytest.approx(4.4, rel=0.05)
