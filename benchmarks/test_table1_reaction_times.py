"""Table 1: in-network applications and their required reaction times.

Regenerates the table from the application registry and checks which
requirements each architecture (control plane at ~32 ms vs Taurus at
~221 ns) can serve.
"""

from repro.apps import APPLICATIONS, ReactionTime, meets_requirement
from repro.core import render_table, write_result

CONTROL_PLANE_LATENCY_S = 32e-3   # Table 8 best case
TAURUS_LATENCY_S = 221e-9         # Table 5 DNN


def build_rows():
    rows = []
    for app in APPLICATIONS:
        marks = [
            "x" if t in app.timescales else ""
            for t in (ReactionTime.PACKET, ReactionTime.FLOWLET,
                      ReactionTime.FLOW, ReactionTime.MICROBURST)
        ]
        rows.append(
            [app.name, app.category, *marks,
             "yes" if meets_requirement(app, TAURUS_LATENCY_S) else "no",
             "yes" if meets_requirement(app, CONTROL_PLANE_LATENCY_S) else "no"]
        )
    return rows


def test_table1(benchmark):
    rows = benchmark(build_rows)
    table = render_table(
        "Table 1: reaction-time requirements (x = required timescale)",
        ["application", "category", "pkt", "flowlet", "flow", "uburst",
         "taurus_ok", "ctrl_plane_ok"],
        rows,
    )
    print("\n" + table)
    write_result("table1_reaction_times", table)
    # Shape assertions: Taurus serves everything; the control plane cannot
    # serve any packet-timescale application.
    assert all(row[-2] == "yes" for row in rows)
    pkt_rows = [row for row in rows if row[2] == "x"]
    assert pkt_rows and all(row[-1] == "no" for row in pkt_rows)
