"""Table 3: float32 vs fix8 accuracy for the TMC IoT DNN classifiers.

Paper: 4x10x2 / 4x5x5x2 / 4x10x10x2 kernels, ~67% accuracy, quantization
diff within ~0.1 pp.
"""

from repro.core import render_table, write_result
from repro.datasets import iot_binary_dataset
from repro.fixpoint import quantize_model
from repro.ml import accuracy, iot_classifier_dnn

KERNELS = ((4, 10, 2), (4, 5, 5, 2), (4, 10, 10, 2))
PAPER = {  # (float32 %, fix8 %, diff pp)
    (4, 10, 2): (67.06, 67.01, -0.05),
    (4, 5, 5, 2): (67.02, 66.95, -0.07),
    (4, 10, 10, 2): (67.04, 67.02, -0.02),
}


def run_kernel(kernel, x, y, cut):
    model = iot_classifier_dnn(kernel, seed=0)
    model.fit(x[:cut], y[:cut], epochs=20, batch_size=64, lr=0.05)
    qmodel = quantize_model(model, x[:512])
    acc_float = 100.0 * accuracy(y[cut:], model.predict(x[cut:]))
    acc_fix8 = 100.0 * accuracy(y[cut:], qmodel.predict(x[cut:]))
    return acc_float, acc_fix8


def test_table3(benchmark):
    x, y = iot_binary_dataset(6000, seed=2)
    cut = 4500

    def sweep():
        return {k: run_kernel(k, x, y, cut) for k in KERNELS}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for kernel in KERNELS:
        acc_f, acc_q = results[kernel]
        label = "x".join(str(v) for v in kernel)
        rows.append(
            [label, f"{acc_f:.2f}", f"{acc_q:.2f}", f"{acc_q - acc_f:+.2f}",
             f"{PAPER[kernel][2]:+.2f}"]
        )
    table = render_table(
        "Table 3: IoT classifier accuracy (%), float32 vs fix8",
        ["kernel", "float32", "fix8", "diff_pp", "paper_diff_pp"],
        rows,
    )
    print("\n" + table)
    write_result("table3_quantization", table)
    for kernel in KERNELS:
        acc_f, acc_q = results[kernel]
        assert 60.0 < acc_f < 75.0          # the paper's ~67% regime
        assert abs(acc_q - acc_f) < 1.0     # minimal quantization loss
