"""Sharded-runtime scaling: shards ∈ {1, 2, 4, 8} against the PR-2 baseline.

Not a paper table: this records how trace replay scales when the trace is
partitioned flow-consistently across N parallel pipeline/block workers
(:class:`~repro.runtime.ShardedRuntime` behind
``TaurusDataPlane(shards=N)``).  Two throughput views per shard count:

* ``wall_pkt_per_s`` — measured wall-clock replay rate on this host.
  Only scales past 1x when the host actually has CPUs to give
  (``host_cpus`` is recorded alongside; on a single-CPU runner the
  executor resolves to ``serial`` and wall speedup stays ~1x by
  construction).
* ``model_pkt_per_s`` — the modeled *hardware* drain rate: N MapReduce
  blocks draining their shards concurrently at the design's II-limited
  rate (slowest shard bounds the trace), the scale-out twin of
  :attr:`~repro.hw.grid.BatchInferenceResult.duration_ns` and the number
  the paper's parallel-fabric story cares about.

The 1-shard run goes through the same runtime (which degenerates to the
plain PR-2 ``process_trace_batch`` path — ``baseline_pr2_pkt_per_s``
cross-checks that) so speedups compare like with like.  Results are
bit-identical across shard counts; both variants assert it.  The smoke
variant runs in tier-1; the >=100k-packet variant is opt-in via
``--runbench``.  Both update ``BENCH_shard_runtime.json``.
"""

from __future__ import annotations

import time

import pytest

from repro.core import render_table, write_result
from repro.datasets import (
    dnn_feature_matrix,
    expand_to_packets,
    generate_connections,
)
from repro.runtime import available_parallelism, resolve_executor
from repro.testbed.dataplane import DEFAULT_CHUNK_SIZE, TaurusDataPlane

SHARD_COUNTS = (1, 2, 4, 8)


def _measure(quantized, trace, shard_counts) -> dict:
    """Replay the trace at each shard count; wall + modeled throughput."""
    trace.columns()  # prime the cached columnar view outside the timers
    rows: dict[str, dict] = {}
    reference = None
    for shards in shard_counts:
        dataplane = TaurusDataPlane(quantized, shards=shards)
        dataplane._exact_shard_blocks()  # compile outside the timers
        result = dataplane.run_switch(trace)  # warmup: primes partitions
        t0 = time.perf_counter()
        result = dataplane.run_switch(trace, chunk_size=DEFAULT_CHUNK_SIZE)
        wall_s = time.perf_counter() - t0
        if reference is None:
            reference = result
        else:
            assert result == reference, (
                f"{shards}-shard run diverged from the 1-shard oracle"
            )
        drain_ns = dataplane.last_modeled_drain_ns
        rows[str(shards)] = {
            "wall_pkt_per_s": float(len(trace) / max(wall_s, 1e-12)),
            "model_pkt_per_s": float(len(trace) / max(drain_ns * 1e-9, 1e-12)),
            "model_drain_ns": float(drain_ns),
        }
    base = rows[str(shard_counts[0])]
    for row in rows.values():
        row["wall_speedup"] = row["wall_pkt_per_s"] / base["wall_pkt_per_s"]
        row["model_speedup"] = row["model_pkt_per_s"] / base["model_pkt_per_s"]
    multi = [row for key, row in rows.items() if key != "1"]
    return {
        "n_packets": int(len(trace)),
        "chunk_size": int(DEFAULT_CHUNK_SIZE),
        "host_cpus": int(available_parallelism()),
        "executor": resolve_executor("auto", max(shard_counts)),
        "shards": rows,
        "best_wall_speedup": max((r["wall_speedup"] for r in multi), default=1.0),
        "best_model_speedup": max((r["model_speedup"] for r in multi), default=1.0),
    }


def _report(name: str, payload: dict) -> None:
    table = render_table(
        f"Sharded runtime scaling ({name}): {payload['n_packets']} packets, "
        f"{payload['host_cpus']} host CPU(s), executor={payload['executor']}",
        ["shards", "wall pkt/s", "wall x", "model pkt/s", "model x"],
        [
            [
                shards,
                f"{row['wall_pkt_per_s']:.3g}",
                f"{row['wall_speedup']:.2f}x",
                f"{row['model_pkt_per_s']:.3g}",
                f"{row['model_speedup']:.2f}x",
            ]
            for shards, row in payload["shards"].items()
        ],
    )
    print("\n" + table)
    write_result("shard_runtime", table)


@pytest.mark.smoke
def test_shard_runtime_smoke(experiment, bench_json):
    """Tier-1-safe: 2-way sharding is bit-identical and drains ~2x faster."""
    live = experiment.workload.live
    trace = expand_to_packets(
        live,
        feature_matrix=dnn_feature_matrix(live),
        max_packets=6000,
        seed=13,
    )
    result = _measure(experiment.dataplane.quantized, trace, (1, 2))
    bench_json("shard_runtime", {"smoke": result})
    _report("smoke", result)
    assert result["best_model_speedup"] > 1.2


@pytest.mark.bench
def test_shard_runtime_full_trace(experiment, bench_json):
    """Opt-in: shards ∈ {1, 2, 4, 8} on the >=100k-packet Table-8 trace.

    Asserts the acceptance bar — multi-shard modeled drain throughput
    >= 1.8x the 1-shard run — and holds wall-clock to the same bar when
    the host has CPUs to parallelize over (single-CPU hosts record the
    honest ~1x and skip that half of the assertion).
    """
    dataset = generate_connections(6000, seed=21)
    trace = expand_to_packets(
        dataset,
        feature_matrix=dnn_feature_matrix(dataset),
        max_packets=150_000,
        seed=22,
    )
    assert len(trace) >= 100_000, "benchmark trace must hold >= 100k packets"
    result = _measure(experiment.dataplane.quantized, trace, SHARD_COUNTS)

    # Cross-check: the runtime's 1-shard path is the PR-2 pipeline with no
    # overhead worth speaking of.
    pr2 = experiment.dataplane.build_pipeline()
    t0 = time.perf_counter()
    pr2.process_trace_batch(trace, chunk_size=DEFAULT_CHUNK_SIZE)
    result["baseline_pr2_pkt_per_s"] = float(
        len(trace) / max(time.perf_counter() - t0, 1e-12)
    )

    bench_json("shard_runtime", {"full_trace": result})
    _report("full trace", result)
    assert result["best_model_speedup"] >= 1.8
    if result["host_cpus"] >= 2:
        assert result["best_wall_speedup"] >= 1.8
