"""Persistent-pool amortization: warm ShardPool runs vs fork-per-run.

Not a paper table: this records what the ROADMAP's "cross-process shard
pools" direction buys.  The PR-3 sharded runtime forks N workers, runs,
ships state back, and tears everything down on **every** ``run_switch``
call — fine for one 142k-packet replay, but the setup swamps
small/interactive traces served repeatedly (the serving-substrate shape
Pegasus/Homunculus assume).  ``TaurusDataPlane(pool=True)`` keeps one
:class:`~repro.runtime.ShardPool` of pre-forked workers warm across
calls and dispatches pipelined chunks, paying per-run only for the
chunks themselves plus a baseline state restore.

Recorded per shard count: wall-clock for ``repeats`` consecutive
``run_switch`` calls through fork-per-run vs the warm pool, their ratio
(``repeat_speedup``), and the pool's sustained packets/sec.  Results are
asserted bit/stat-identical to the single-pipeline oracle at shards ∈
{1, 2, 4} (and per call between the two paths).  The smoke variant runs
in tier-1; ``--runbench`` adds the larger repeated-trace sweep.  Both
update ``BENCH_pool_runtime.json``; ``benchmarks/check_bench.py`` floors
the speedup so later PRs can't silently regress warm-pool serving.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core import render_table, write_result
from repro.datasets import dnn_feature_matrix, expand_to_packets
from repro.runtime import available_parallelism
from repro.testbed.dataplane import TaurusDataPlane

HAS_FORK = hasattr(os, "fork")
#: The executor whose per-run setup the pool amortizes.  Without fork
#: (non-POSIX) both paths degrade to threads and the comparison is
#: recorded but not asserted.
EXECUTOR = "fork" if HAS_FORK else "thread"


def _measure(quantized, trace, shard_counts, repeats, chunk_size=512) -> dict:
    """Repeated small-trace replays: fork-per-run vs one warm pool."""
    trace.columns()  # prime the cached columnar view outside the timers
    oracle = TaurusDataPlane(quantized)
    reference = oracle.run_switch(trace, chunk_size=chunk_size)
    rows: dict[str, dict] = {}
    for shards in shard_counts:
        per_run = TaurusDataPlane(quantized, shards=shards, executor=EXECUTOR)
        per_run._exact_shard_blocks()  # compile outside the timers
        result = per_run.run_switch(trace, chunk_size=chunk_size)  # warmup
        assert result == reference, "fork-per-run diverged from the oracle"
        t0 = time.perf_counter()
        for __ in range(repeats):
            result = per_run.run_switch(trace, chunk_size=chunk_size)
        fork_s = time.perf_counter() - t0

        with TaurusDataPlane(
            quantized, shards=shards, executor=EXECUTOR, pool=True
        ) as pooled:
            warm = pooled.run_switch(trace, chunk_size=chunk_size)  # warmup
            assert warm == reference, "warm pool diverged from the oracle"
            t0 = time.perf_counter()
            for __ in range(repeats):
                warm = pooled.run_switch(trace, chunk_size=chunk_size)
            pool_s = time.perf_counter() - t0
        assert warm == result == reference, "repeated runs diverged"
        rows[str(shards)] = {
            "fork_per_run_s": fork_s / repeats,
            "pool_per_run_s": pool_s / repeats,
            "repeat_speedup": fork_s / max(pool_s, 1e-12),
            "pool_pkt_per_s": repeats * len(trace) / max(pool_s, 1e-12),
        }
    multi = [row for key, row in rows.items() if key != "1"]
    return {
        "n_packets": int(len(trace)),
        "repeats": int(repeats),
        "chunk_size": int(chunk_size),
        "host_cpus": int(available_parallelism()),
        "executor": EXECUTOR,
        "shards": rows,
        "repeat_speedup": max(
            (r["repeat_speedup"] for r in multi), default=1.0
        ),
        "pool_pkt_per_s": max(
            (r["pool_pkt_per_s"] for r in multi), default=0.0
        ),
    }


def _report(name: str, payload: dict) -> None:
    table = render_table(
        f"Warm shard pool vs fork-per-run ({name}): "
        f"{payload['n_packets']} packets x {payload['repeats']} runs, "
        f"{payload['host_cpus']} host CPU(s), executor={payload['executor']}",
        ["shards", "fork-per-run s/run", "warm pool s/run", "speedup"],
        [
            [
                shards,
                f"{row['fork_per_run_s']*1e3:.1f} ms",
                f"{row['pool_per_run_s']*1e3:.1f} ms",
                f"{row['repeat_speedup']:.2f}x",
            ]
            for shards, row in payload["shards"].items()
        ],
    )
    print("\n" + table)
    write_result("pool_runtime", table)


@pytest.mark.smoke
def test_pool_runtime_smoke(experiment, bench_json):
    """Tier-1-safe: a warm 2-shard pool beats fork-per-run on a small
    trace, bit/stat-identically."""
    live = experiment.workload.live
    trace = expand_to_packets(
        live,
        feature_matrix=dnn_feature_matrix(live),
        max_packets=1500,
        seed=41,
    )
    result = _measure(
        experiment.dataplane.quantized, trace, (1, 2), repeats=4
    )
    bench_json("pool_runtime", {"smoke": result})
    _report("smoke", result)
    if HAS_FORK:
        assert result["repeat_speedup"] > 1.2


@pytest.mark.bench
def test_pool_runtime_full(experiment, bench_json):
    """Opt-in: shards ∈ {1, 2, 4}, more repeats, a larger small-trace mix.

    Asserts the acceptance bar — repeated warm-pool runs beat
    fork-per-run wall-clock — with identity held at every shard count.
    """
    live = experiment.workload.live
    trace = expand_to_packets(
        live,
        feature_matrix=dnn_feature_matrix(live),
        max_packets=6000,
        seed=42,
    )
    result = _measure(
        experiment.dataplane.quantized, trace, (1, 2, 4), repeats=8
    )
    bench_json("pool_runtime", {"full_trace": result})
    _report("full trace", result)
    if HAS_FORK:
        assert result["repeat_speedup"] > 1.2
