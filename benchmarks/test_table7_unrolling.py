"""Table 7: Conv1D throughput and area scaling with unrolling factor
(1/8 -> 1 of line rate; 0.19 -> 1.57 mm^2)."""

import pytest

from repro.compiler import unroll_sweep
from repro.core import render_table, write_result
from repro.mapreduce import conv1d_graph, inner_product_graph

PAPER = {1: (0.125, 0.19), 2: (0.25, 0.44), 4: (0.5, 0.93), 8: (1.0, 1.57)}


def test_table7(benchmark):
    points = benchmark(lambda: unroll_sweep(lambda u: conv1d_graph(unroll=u)))
    rows = []
    for point in points:
        paper_rate, paper_area = PAPER[point.unroll]
        rows.append(
            [f"conv1d x{point.unroll}",
             f"{point.line_rate_fraction:.3f}", f"({paper_rate})",
             f"{point.area_mm2:.2f}", f"({paper_area})"]
        )
    ip = unroll_sweep(lambda __: inner_product_graph(16), factors=(1,))[0]
    rows.append(
        ["inner_product", f"{ip.line_rate_fraction:.3f}", "(1.0)",
         f"{ip.area_mm2:.2f}", "(0.04)"]
    )
    table = render_table(
        "Table 7: throughput and area vs unroll factor",
        ["kernel", "line_rate", "paper", "area_mm2", "paper"],
        rows,
    )
    print("\n" + table)
    write_result("table7_unrolling", table)

    # Exact line-rate fractions and monotone area growth.
    for point in points:
        assert point.line_rate_fraction == PAPER[point.unroll][0]
        assert point.area_mm2 == pytest.approx(PAPER[point.unroll][1], rel=0.25)
    areas = [p.area_mm2 for p in points]
    assert areas == sorted(areas)
    # The inner product has no outer loop: always line rate, tiny area.
    assert ip.line_rate_fraction == 1.0
