"""Ablation (Section 5.1.2): datapath precision vs application cost.

"For 16- and 32-bit data paths, both area and power will increase by about
a factor of 2 and 4, respectively."  We recompile the anomaly DNN at each
precision and check the factors — plus the accuracy side of the trade
(Table 3 showed fix8 loses nothing, so the wider datapaths buy nothing).
"""

import pytest

from repro.compiler import compile_graph
from repro.core import render_table, write_result
from repro.hw import CUGeometry
from repro.mapreduce import dnn_graph


def test_precision_ablation(benchmark, anomaly_q):
    graph = dnn_graph(anomaly_q)

    def sweep():
        return {
            prec: compile_graph(graph, CUGeometry(16, 4, prec))
            for prec in ("fix8", "fix16", "fix32")
        }

    designs = benchmark(sweep)
    base = designs["fix8"]
    rows = [
        [prec,
         f"{d.area_mm2:.2f}", f"{d.area_mm2 / base.area_mm2:.2f}x",
         f"{d.power_mw:.0f}", f"{d.power_mw / base.power_mw:.2f}x",
         f"{d.latency_ns:.0f}"]
        for prec, d in designs.items()
    ]
    table = render_table(
        "Ablation: anomaly DNN cost vs datapath precision (16 lanes x 4 stages)",
        ["precision", "mm^2", "area_x", "mW", "power_x", "ns"],
        rows,
    )
    print("\n" + table)
    write_result("ablation_precision", table)
    assert designs["fix16"].area_mm2 / base.area_mm2 == pytest.approx(2.0, rel=0.1)
    assert designs["fix32"].area_mm2 / base.area_mm2 == pytest.approx(4.4, rel=0.15)
    assert designs["fix16"].power_mw / base.power_mw == pytest.approx(1.95, rel=0.1)
    # Latency is precision-independent (same pipeline depth).
    assert designs["fix32"].latency_ns == base.latency_ns


def test_lane_count_ablation(benchmark, anomaly_q):
    """Section 5.1.1's lane-count argument: too few lanes split the widest
    dot product across CUs (more area + latency); 16 covers the DNN's
    12-wide layer."""
    graph = dnn_graph(anomaly_q)

    def sweep():
        return {
            lanes: compile_graph(graph, CUGeometry(lanes, 4, "fix8"))
            for lanes in (8, 16, 32)
        }

    designs = benchmark(sweep)
    rows = [
        [lanes, f"{d.area_mm2:.2f}", d.n_cu, f"{d.latency_ns:.0f}"]
        for lanes, d in designs.items()
    ]
    table = render_table(
        "Ablation: anomaly DNN vs CU lane count",
        ["lanes", "mm^2", "CUs", "ns"],
        rows,
    )
    print("\n" + table)
    write_result("ablation_lanes", table)
    # 8 lanes split the 12-wide dot: more CUs and longer critical path.
    assert designs[8].latency_ns > designs[16].latency_ns
    # 32 lanes leave half the datapath idle: marginal latency gain (more
    # weights fit CU-local registers) but bigger total area — the
    # under-utilization the paper's lane-count study warns about.
    assert designs[32].latency_ns <= designs[16].latency_ns
    assert designs[32].area_mm2 > designs[16].area_mm2
