"""Section 3: weights are more space-efficient than flow rules.

Paper: matching the anomaly DNN's behaviour with flow rules would take
~12 MB (the full dataset as rules) versus 5.6 KB of weights — a 2135x
reduction.  We compute both sides from our artifacts.
"""

from repro.baselines import weights_vs_rules_bytes
from repro.core import render_table, write_result
from repro.datasets import generate_connections


def test_weights_vs_rules(benchmark, anomaly_q):
    dataset = generate_connections(12_000, seed=0)  # "the full dataset"

    def compare():
        # Weights at fix8 + per-layer metadata (formats, shapes): the
        # installable artifact.
        weight_bytes = anomaly_q.weight_bytes + 64
        return weights_vs_rules_bytes(
            weight_bytes, n_distinct_inputs=len(dataset), rule_bytes=64
        )

    weight_bytes, rule_bytes, ratio = benchmark(compare)
    table = render_table(
        "Section 3: model weights vs equivalent flow rules",
        ["artifact", "bytes", "note"],
        [
            ["DNN weights (fix8)", weight_bytes, "installed via weight update"],
            ["flow rules", rule_bytes, f"{len(dataset)} rules x 64 B"],
            ["ratio", f"{ratio:.0f}x", "paper: 2135x"],
        ],
    )
    print("\n" + table)
    write_result("sec3_weights_vs_rules", table)
    # Same order of magnitude as the paper's 2135x.
    assert ratio > 1000
    assert weight_bytes < 10_000
