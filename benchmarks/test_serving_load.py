"""Always-on serving under load: throughput + time-to-decision envelope.

Not a paper table: this prices PR 8's :class:`~repro.runtime.InferenceService`
— the admission-controlled, bounded-queue front door over the warm shard
pool.  One question matters for a per-packet ML service: **what happens to
decision latency and loss as offered load crosses capacity?**

The benchmark first measures drain capacity (a warm service pumping a full
backlog with no pacing), then drives a seeded bursty two-tenant arrival
schedule through a *started* (threaded) service at three operating points:

* ``below_capacity`` (~0.5x) — everything should be admitted and p99
  time-to-decision should stay near the per-chunk service time;
* ``at_capacity`` (~1.0x) — queues absorb bursts, accounting stays exact;
* ``overload`` (~3x) — bounded queues must *shed* instead of growing, and
  the service keeps answering with explicit verdicts.

Per point it records offered vs. served packet rate, p50/p99
time-to-decision, and the accepted / shed / deferred split.  The smoke
variant runs in tier-1; ``--runbench`` adds a larger trace.  Both update
``BENCH_serving.json``; ``benchmarks/check_bench.py`` floors the overload
shed count and the below-capacity accept ratio.
"""

from __future__ import annotations

import time

import pytest

from repro.core import render_table, write_result
from repro.datasets import dnn_feature_matrix, expand_to_packets
from repro.hw import MapReduceBlock
from repro.mapreduce import dnn_graph
from repro.runtime import ClientSpec, InferenceService, ShardedRuntime
from repro.testbed import bursty_schedule, chunk_columns, replay_wall
from repro.testbed.dataplane import TaurusDataPlane

SHARDS = 2

#: (point name, offered load as a fraction of measured capacity)
POINTS = (
    ("below_capacity", 0.5),
    ("at_capacity", 1.0),
    ("overload", 3.0),
)


def _backend(quantized) -> ShardedRuntime:
    """A warm thread-pooled sharded runtime (one block per shard)."""
    plane = TaurusDataPlane(quantized)
    blocks = [MapReduceBlock(dnn_graph(quantized)) for __ in range(SHARDS)]
    return ShardedRuntime(
        lambda shard: plane.build_pipeline(block=blocks[shard]),
        shards=SHARDS,
        executor="thread",
        pool="thread",
    )


def _split_round_robin(chunks, names):
    return {
        name: [c for j, c in enumerate(chunks) if j % len(names) == i]
        for i, name in enumerate(names)
    }


def _capacity_pkt_s(backend, chunks, chunk_packets) -> float:
    """Drain-limited packet rate: submit a full backlog, pump it dry."""
    svc = InferenceService(
        backend,
        [ClientSpec(name="cap", queue_depth=len(chunks))],
        chunk_size=chunk_packets,
        own_backend=False,
    )
    for chunk in chunks[:4]:  # warm the pool outside the timer
        svc.submit("cap", chunk)
    svc.pump()
    for chunk in chunks:
        svc.submit("cap", chunk)
    t0 = time.perf_counter()
    svc.pump()
    elapsed = time.perf_counter() - t0
    packets = sum(c.n for c in chunks)
    svc.close()
    return packets / max(elapsed, 1e-9)


def _drive_point(backend, chunks, chunk_packets, factor, capacity_pkt_s, seed):
    """One operating point: bursty two-tenant replay at ``factor``x capacity."""
    names = ("alpha", "beta")
    per_client = _split_round_robin(chunks, names)
    counts = {name: len(per_client[name]) for name in names}
    rate_chunks_s = factor * capacity_pkt_s / chunk_packets
    schedule = bursty_schedule(
        counts,
        seed=seed,
        base_rate=rate_chunks_s,
        burst_factor=3.0,
        burst_every=16,
        burst_len=6,
    )
    svc = InferenceService(
        backend,
        [
            ClientSpec(name=name, queue_depth=6, result_depth=len(chunks))
            for name in names
        ],
        chunk_size=chunk_packets,
        own_backend=False,
    )
    svc.start()
    t0 = time.perf_counter()
    replay_wall(svc, schedule, per_client)
    stats = svc.drain(timeout=120.0)
    wall = time.perf_counter() - t0
    svc.close()
    return {
        "offered_factor": factor,
        "offered_pkt_s": factor * capacity_pkt_s,
        "wall_s": wall,
        "throughput_pkt_s": stats.packets_out / max(wall, 1e-9),
        "p50_decision_ms": stats.p50_decision_s * 1e3,
        "p99_decision_ms": stats.p99_decision_s * 1e3,
        "submitted": int(stats.submitted),
        "accepted": int(stats.accepted),
        "deferred": int(stats.deferred),
        "shed": int(stats.shed),
        "completed": int(stats.completed),
        "expired": int(stats.expired),
        "accept_ratio": stats.accepted / max(stats.submitted, 1),
    }


def _measure(quantized, trace, chunk_packets, seed=0) -> dict:
    chunks = chunk_columns(trace, chunk_packets)
    with _backend(quantized) as backend:
        capacity = _capacity_pkt_s(backend, chunks, chunk_packets)
        result: dict = {
            "n_chunks": len(chunks),
            "chunk_packets": int(chunk_packets),
            "n_packets": int(sum(c.n for c in chunks)),
            "shards": SHARDS,
            "capacity_pkt_s": capacity,
            "points_recorded": 0,
        }
        for name, factor in POINTS:
            result[name] = _drive_point(
                backend, chunks, chunk_packets, factor, capacity, seed
            )
            result["points_recorded"] += 1
    return result


def _report(name: str, payload: dict) -> None:
    rows = [
        ["drain capacity", f"{payload['capacity_pkt_s']:,.0f} pkt/s", "", ""],
    ]
    for point, __ in POINTS:
        p = payload[point]
        rows.append(
            [
                f"{point} ({p['offered_factor']:.1f}x)",
                f"{p['throughput_pkt_s']:,.0f} pkt/s",
                f"{p['p50_decision_ms']:.1f} / {p['p99_decision_ms']:.1f} ms",
                f"{p['accepted']}/{p['shed']}/{p['deferred']}",
            ]
        )
    table = render_table(
        f"Always-on serving ({name}): {payload['n_packets']} packets in "
        f"{payload['n_chunks']} chunks of {payload['chunk_packets']}, "
        f"{payload['shards']} shards",
        ["operating point", "served", "p50 / p99 decision", "acc/shed/def"],
        rows,
    )
    print("\n" + table)
    write_result("serving", table)


def _check(result: dict) -> None:
    assert result["points_recorded"] == len(POINTS)
    assert result["overload"]["shed"] >= 1, "overload point never shed"
    assert result["below_capacity"]["accept_ratio"] >= 0.6
    assert result["below_capacity"]["completed"] >= 1
    for point, __ in POINTS:
        # Bounded queues: everything offered got an explicit verdict.
        p = result[point]
        assert p["accepted"] + p["shed"] + p["deferred"] == p["submitted"]


@pytest.mark.smoke
def test_serving_smoke(experiment, bench_json):
    """Tier-1-safe: three operating points on a small trace."""
    live = experiment.workload.live
    trace = expand_to_packets(
        live,
        feature_matrix=dnn_feature_matrix(live),
        max_packets=4600,
        seed=45,
    )
    result = _measure(experiment.dataplane.quantized, trace, chunk_packets=96)
    bench_json("serving", {"smoke": result})
    _report("smoke", result)
    _check(result)


@pytest.mark.bench
def test_serving_full(experiment, bench_json):
    """Opt-in: a larger trace and bigger chunks."""
    live = experiment.workload.live
    trace = expand_to_packets(
        live,
        feature_matrix=dnn_feature_matrix(live),
        max_packets=23_000,
        seed=46,
    )
    result = _measure(
        experiment.dataplane.quantized, trace, chunk_packets=192, seed=1
    )
    bench_json("serving", {"full_trace": result})
    _report("full trace", result)
    _check(result)
