"""Scalar vs batched execution of the *entire* PISA pipeline.

Not a paper table: this records the simulator's full-switch throughput —
parse -> flow registers -> preprocessing MATs -> {MapReduce | bypass} ->
postprocessing MATs -> scheduler — so the repo's perf trajectory is
visible across PRs.  The scalar path walks :meth:`TaurusPipeline.process`
once per packet; the batched path streams the trace's cached columns
through :meth:`TaurusPipeline.process_trace_batch`.  The smoke variant
runs in tier-1; the >=100k-packet variant is opt-in via ``--runbench``.
Both update ``BENCH_pipeline_batch.json``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import render_table, write_result
from repro.datasets import dnn_feature_matrix, expand_to_packets, generate_connections
from repro.pisa import from_record
from repro.testbed.dataplane import DEFAULT_CHUNK_SIZE


def _measure(dataplane, trace, scalar_sample: int) -> dict:
    """Packets/sec through the full switch: scalar (sampled) vs batched."""
    trace.columns()  # prime the cached columnar view outside the timers

    scalar_pipe = dataplane.build_pipeline()
    sample = [from_record(p) for p in trace.packets[:scalar_sample]]
    t0 = time.perf_counter()
    scalar_results = scalar_pipe.process_trace(sample)
    scalar_s = time.perf_counter() - t0

    batch_pipe = dataplane.build_pipeline()
    t0 = time.perf_counter()
    batch = batch_pipe.process_trace_batch(trace, chunk_size=DEFAULT_CHUNK_SIZE)
    batch_s = time.perf_counter() - t0

    # The batched path is the same machine: identical decisions, scores,
    # and latencies on the sampled prefix.
    assert np.array_equal(
        np.array([r.decision for r in scalar_results]),
        batch.decisions[: len(sample)],
    ), "batched pipeline diverged from the scalar loop (decisions)"
    assert np.array_equal(
        np.array(
            [np.nan if r.ml_score is None else r.ml_score for r in scalar_results]
        ),
        batch.ml_scores[: len(sample)],
        equal_nan=True,
    ), "batched pipeline diverged from the scalar loop (scores)"
    assert np.array_equal(
        np.array([r.latency_ns for r in scalar_results]),
        batch.latencies_ns[: len(sample)],
    ), "batched pipeline diverged from the scalar loop (latencies)"

    scalar_pps = len(sample) / max(scalar_s, 1e-12)
    batch_pps = len(trace) / max(batch_s, 1e-12)
    return {
        "n_packets": int(len(trace)),
        "chunk_size": int(DEFAULT_CHUNK_SIZE),
        "scalar_sample": int(len(sample)),
        "scalar_pkt_per_s": float(scalar_pps),
        "batch_pkt_per_s": float(batch_pps),
        "speedup": float(batch_pps / scalar_pps),
        "flagged": int(batch.flagged),
    }


def _report(rows: dict[str, dict]) -> None:
    table = render_table(
        "Full-pipeline throughput: scalar process() vs process_trace_batch",
        ["run", "packets", "scalar pkt/s", "batch pkt/s", "speedup"],
        [
            [name, r["n_packets"], f"{r['scalar_pkt_per_s']:.3g}",
             f"{r['batch_pkt_per_s']:.3g}", f"{r['speedup']:.0f}x"]
            for name, r in rows.items()
        ],
    )
    print("\n" + table)
    write_result("pipeline_batch_throughput", table)


@pytest.mark.smoke
def test_pipeline_batch_smoke(experiment, bench_json):
    """Tier-1-safe: the batched switch path is identical and much faster."""
    trace = expand_to_packets(
        experiment.workload.live,
        feature_matrix=dnn_feature_matrix(experiment.workload.live),
        max_packets=6000,
        seed=13,
    )
    result = _measure(experiment.dataplane, trace, scalar_sample=64)
    bench_json("pipeline_batch", {"smoke": result})
    _report({"smoke (full switch)": result})
    assert result["speedup"] > 10


@pytest.mark.bench
def test_pipeline_batch_full_trace(experiment, bench_json):
    """Opt-in: a >=100k-packet trace through the full switch model.

    Asserts the acceptance bar — the batched pipeline >= 50x the scalar
    per-packet loop in packets/sec.
    """
    dataset = generate_connections(6000, seed=21)
    trace = expand_to_packets(
        dataset,
        feature_matrix=dnn_feature_matrix(dataset),
        max_packets=150_000,
        seed=22,
    )
    assert len(trace) >= 100_000, "benchmark trace must hold >= 100k packets"
    result = _measure(experiment.dataplane, trace, scalar_sample=256)
    bench_json("pipeline_batch", {"full_trace": result})
    _report({"full trace (full switch)": result})
    assert result["speedup"] >= 50
