"""Figure 10: area needed for each line-rate activation function as the
CU stage count varies (2/3/4/6 stages).

Shape to reproduce: cheap activations (ReLU) *grow* with stage count (one
mostly-idle CU gets bigger); long-chain activations (Taylor-series tanh/
sigmoid) shrink or stay flat as deeper CUs absorb more of the chain.
"""

from repro.compiler import compile_graph
from repro.core import render_table, series_to_text, write_result
from repro.hw import CUGeometry
from repro.mapreduce import activation_graph

ACTIVATION_NAMES = (
    "relu", "leaky_relu", "tanh_exp", "sigmoid_exp", "tanh_pw", "sigmoid_pw", "act_lut",
)
STAGES = (2, 3, 4, 6)


def sweep():
    out = {}
    for name in ACTIVATION_NAMES:
        for stages in STAGES:
            design = compile_graph(activation_graph(name), CUGeometry(16, stages))
            out[(name, stages)] = design.area_mm2
    return out


def test_fig10(benchmark):
    results = benchmark(sweep)
    rows = [
        [name, *(f"{results[(name, s)]:.3f}" for s in STAGES)]
        for name in ACTIVATION_NAMES
    ]
    table = render_table(
        "Figure 10: activation area (mm^2) at line rate vs stage count",
        ["activation", *(f"stages={s}" for s in STAGES)],
        rows,
    )
    print("\n" + table)
    write_result("fig10_activation_area", table)
    series = {
        name: [(float(s), results[(name, s)]) for s in STAGES]
        for name in ACTIVATION_NAMES
    }
    write_result("fig10_series", series_to_text("fig10 area vs stages", series))

    # ReLU grows with stages (idle stages still cost area).
    relu = [results[("relu", s)] for s in STAGES]
    assert relu == sorted(relu)
    # The Taylor-series sigmoid shrinks from 2 -> 6 stages.
    assert results[("sigmoid_exp", 6)] < results[("sigmoid_exp", 2)]
    # At 4 stages, Table 6's ordering holds.
    at4 = {name: results[(name, 4)] for name in ACTIVATION_NAMES}
    assert at4["relu"] < at4["act_lut"] < at4["tanh_pw"]
    assert at4["tanh_pw"] < at4["tanh_exp"] < at4["sigmoid_exp"]
