"""Table 6: area and latency of each microbenchmark at line rate in a
16-lane, 4-stage CU (Conv1D, inner product, seven activation variants)."""

import pytest

from repro.compiler import compile_graph
from repro.core import render_table, write_result
from repro.mapreduce import activation_graph, conv1d_graph, inner_product_graph

PAPER = {  # name: (mm^2, ns)
    "conv1d": (1.57, 122),
    "inner_product": (0.04, 23),
    "relu": (0.04, 22),
    "leaky_relu": (0.04, 22),
    "tanh_exp": (0.26, 69),
    "sigmoid_exp": (0.31, 73),
    "tanh_pw": (0.13, 38),
    "sigmoid_pw": (0.17, 46),
    "act_lut": (0.12, 36),
}

BUILDERS = {
    "conv1d": lambda: conv1d_graph(unroll=8),
    "inner_product": lambda: inner_product_graph(16),
    **{
        name: (lambda n: lambda: activation_graph(n))(name)
        for name in ("relu", "leaky_relu", "tanh_exp", "sigmoid_exp",
                     "tanh_pw", "sigmoid_pw", "act_lut")
    },
}


def test_table6(benchmark):
    def sweep():
        return {name: compile_graph(builder()) for name, builder in BUILDERS.items()}

    designs = benchmark(sweep)
    rows = [
        [name,
         f"{d.area_mm2:.2f}", f"({PAPER[name][0]})",
         f"{d.latency_ns:.0f}", f"({PAPER[name][1]})"]
        for name, d in designs.items()
    ]
    table = render_table(
        "Table 6: microbenchmark area (mm^2) and latency (ns) at line rate",
        ["kernel", "area", "paper", "latency", "paper"],
        rows,
    )
    print("\n" + table)
    write_result("table6_microbenchmarks", table)

    # Activation kernels and the inner product match the paper closely.
    for name in ("inner_product", "relu", "leaky_relu", "tanh_exp",
                 "sigmoid_exp", "tanh_pw", "sigmoid_pw", "act_lut"):
        paper_mm2, paper_ns = PAPER[name]
        assert designs[name].latency_ns == pytest.approx(paper_ns, abs=4), name
        assert designs[name].area_mm2 == pytest.approx(paper_mm2, rel=0.15), name
    # Conv1D: area matches; latency is structurally lower in our spatial
    # mapping (parallel slice pipelines) — the *shape* (conv >> everything
    # else in area, runs at line rate only when fully unrolled) holds.
    assert designs["conv1d"].area_mm2 == pytest.approx(1.57, rel=0.15)
    assert designs["conv1d"].area_mm2 > 8 * designs["inner_product"].area_mm2
    assert designs["conv1d"].line_rate_fraction == 1.0


def test_table6_functional(benchmark):
    """The microbenchmarks also *execute*: one packet through each graph."""
    import numpy as np

    graphs = {name: builder() for name, builder in BUILDERS.items()}

    def run_all():
        outputs = {}
        for name, graph in graphs.items():
            width = graphs[name].inputs()[0].width
            outputs[name] = graph.execute(np.linspace(-1, 1, width))
        return outputs

    outputs = benchmark(run_all)
    assert all(out.size >= 1 for out in outputs.values())
