"""Multi-app fabric: interleaved throughput vs the serial-per-app baseline.

Not a paper table: this records how one switch serves *two* compiled
programs — the anomaly-detection DNN and the Indigo congestion LSTM —
through :class:`~repro.runtime.MultiAppFabric` (the realistic
several-models-per-device deployment shape Homunculus and Pegasus argue
for).  Three configurations per run:

* ``serial`` (shards=1) — the baseline: run app A to completion, swap the
  program once, run app B.  Aggregate drain is the sum of the per-app
  drains plus one reconfiguration.
* ``shards1_round_robin`` — one shared grid, chunks interleaved: every
  program switch bills the issue clock
  (:meth:`~repro.hw.grid.MapReduceBlock.reconfigure` accounting), so this
  shows the *cost* of fine-grained time-multiplexing.
* ``shards2_round_robin`` — shard→app affinity: each app owns a lane,
  zero reconfigurations, lanes drain concurrently — aggregate modeled
  throughput beats the serial baseline by up to the lane count.

Per-app results are asserted bit-identical across every configuration
(the fabric's core contract).  The smoke variant runs in tier-1; the
>=100k-packet two-app variant is opt-in via ``--runbench``.  Both update
``BENCH_multi_app.json``, whose ``best_aggregate_speedup`` floors are
enforced by ``benchmarks/check_bench.py`` in CI.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import render_table, write_result
from repro.datasets import (
    CongestionTraceConfig,
    congestion_packet_trace,
    dnn_feature_matrix,
    expand_to_packets,
    generate_connections,
)
from repro.ml import indigo_lstm
from repro.runtime import FabricApp, MultiAppFabric, available_parallelism

CFG = CongestionTraceConfig()


def _apps(quantized, lstm):
    return [
        FabricApp.from_quantized_dnn(quantized, name="anomaly"),
        FabricApp.from_lstm(
            lstm, window_steps=CFG.window_steps, name="congestion"
        ),
    ]


def _assert_identical(results, reference) -> None:
    for name, result in results.items():
        expected = reference[name]
        assert np.array_equal(result.decisions, expected.decisions), name
        assert np.array_equal(
            result.ml_scores, expected.ml_scores, equal_nan=True
        ), name
        assert np.array_equal(
            result.latencies_ns, expected.latencies_ns
        ), name


def _measure(quantized, lstm, anomaly_trace, congestion_trace, chunk_size):
    """Wall + modeled throughput per configuration; identity across all."""
    traces = {"anomaly": anomaly_trace, "congestion": congestion_trace}
    for trace in traces.values():
        trace.columns()  # prime cached columns outside the timers
    n_total = len(anomaly_trace) + len(congestion_trace)

    def run(shards, policy):
        fabric = MultiAppFabric(
            _apps(quantized, lstm), shards=shards, chunk_size=chunk_size
        )
        fabric.run(traces, policy=policy)  # warmup: primes partition caches
        # Fresh fabric for clean register state; lanes (graph compilation)
        # are built outside the timer so wall_pkt_per_s measures replay,
        # not compile_graph.
        fabric = MultiAppFabric(
            _apps(quantized, lstm), shards=shards, chunk_size=chunk_size
        )
        fabric._ensure_lanes()
        t0 = time.perf_counter()
        outcome = fabric.run(traces, policy=policy)
        wall_s = time.perf_counter() - t0
        return outcome, wall_s

    serial, serial_wall = run(1, "serial")
    configs = {
        "shards1_round_robin": run(1, "round_robin"),
        "shards1_weighted": run(1, "weighted"),
        "shards2_round_robin": run(2, "round_robin"),
    }

    def row(outcome, wall_s):
        return {
            "drain_ns": float(outcome.drain_ns),
            "model_pkt_per_s": float(outcome.model_pkt_per_s),
            "wall_pkt_per_s": float(n_total / max(wall_s, 1e-12)),
            "reconfigurations": int(outcome.reconfigurations),
            "reconfig_ns": float(outcome.reconfig_ns),
            "per_app_model_pkt_per_s": {
                name: float(n / max(outcome.drain_ns * 1e-9, 1e-12))
                for name, n in outcome.per_app_packets.items()
            },
        }

    payload = {
        "n_packets": int(n_total),
        "apps": {
            name: int(n) for name, n in serial.per_app_packets.items()
        },
        "chunk_size": int(chunk_size),
        "host_cpus": int(available_parallelism()),
        "serial": row(serial, serial_wall),
        "configs": {},
    }
    for name, (outcome, wall_s) in configs.items():
        _assert_identical(outcome.results, serial.results)
        entry = row(outcome, wall_s)
        entry["aggregate_speedup"] = float(
            serial.drain_ns / max(outcome.drain_ns, 1e-12)
        )
        payload["configs"][name] = entry
    payload["best_aggregate_speedup"] = max(
        entry["aggregate_speedup"] for entry in payload["configs"].values()
    )
    return payload


def _report(name: str, payload: dict) -> None:
    rows = [
        [
            "serial (baseline)",
            f"{payload['serial']['drain_ns'] / 1e3:.1f}",
            f"{payload['serial']['model_pkt_per_s']:.3g}",
            "1.00x",
            payload["serial"]["reconfigurations"],
        ]
    ]
    for config, entry in payload["configs"].items():
        rows.append(
            [
                config,
                f"{entry['drain_ns'] / 1e3:.1f}",
                f"{entry['model_pkt_per_s']:.3g}",
                f"{entry['aggregate_speedup']:.2f}x",
                entry["reconfigurations"],
            ]
        )
    table = render_table(
        f"Multi-app fabric ({name}): {payload['n_packets']} packets "
        f"({payload['apps']}), chunk={payload['chunk_size']}",
        ["config", "drain us", "model pkt/s", "agg speedup", "reconfigs"],
        rows,
    )
    print("\n" + table)
    write_result("multi_app", table)


@pytest.mark.smoke
def test_multi_app_smoke(experiment, bench_json):
    """Tier-1-safe: two apps on one switch; affinity beats serial."""
    live = experiment.workload.live
    anomaly_trace = expand_to_packets(
        live,
        feature_matrix=dnn_feature_matrix(live),
        max_packets=5000,
        seed=17,
    )
    # The LSTM folds 6-way onto the 12x10 grid (II = 48 cycles), so ~1/48
    # of the DNN's packet count loads both lanes about equally.
    congestion_trace = congestion_packet_trace(120, CFG, seed=18)
    lstm = indigo_lstm(seed=18)
    result = _measure(
        experiment.dataplane.quantized,
        lstm,
        anomaly_trace,
        congestion_trace,
        chunk_size=512,
    )
    bench_json("multi_app", {"smoke": result})
    _report("smoke", result)
    # Fine-grained time-multiplexing on ONE grid pays for its swaps ...
    assert result["configs"]["shards1_round_robin"]["reconfigurations"] > 1
    # ... while affine lanes serve both apps faster than serially.
    assert result["best_aggregate_speedup"] >= 1.4


@pytest.mark.bench
def test_multi_app_full_trace(experiment, bench_json):
    """Opt-in: the >=100k-packet two-app workload (acceptance bar)."""
    dataset = generate_connections(6000, seed=23)
    trace = expand_to_packets(
        dataset,
        feature_matrix=dnn_feature_matrix(dataset),
        max_packets=150_000,
        seed=24,
    )
    # ~1/48 of the anomaly packet count balances the folded LSTM lane
    # (II = 48) against the line-rate DNN lane.
    congestion_trace = congestion_packet_trace(3000, CFG, seed=19)
    assert len(trace) + len(congestion_trace) >= 100_000
    lstm = indigo_lstm(seed=19)
    result = _measure(
        experiment.dataplane.quantized,
        lstm,
        trace,
        congestion_trace,
        chunk_size=8192,
    )
    bench_json("multi_app", {"full_trace": result})
    _report("full trace", result)
    assert result["best_aggregate_speedup"] >= 1.5
