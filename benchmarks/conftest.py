"""Shared benchmark fixtures: trained models and workloads (session-scoped).

Each benchmark regenerates one of the paper's tables or figures, printing
the rows and writing them under ``results/``.  Perf-trajectory numbers
(packets/sec and friends) go through the :func:`bench_json` knob, which
persists them as ``BENCH_<name>.json`` at the repo root so successive PRs
can diff throughput.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.datasets import dnn_feature_matrix, generate_connections
from repro.fixpoint import quantize_model
from repro.ml import anomaly_detection_dnn
from repro.testbed import EndToEndExperiment

#: Where BENCH_*.json perf records land (repo root, next to ROADMAP.md);
#: override with TAURUS_BENCH_DIR.
BENCH_DIR = Path(os.environ.get("TAURUS_BENCH_DIR", Path(__file__).resolve().parent.parent))


def pytest_configure(config):
    # Benchmarks print their tables; -s is not required because we also
    # persist everything under results/.
    pass


@pytest.fixture(scope="session")
def bench_json():
    """Record perf numbers for the trajectory: ``record(name, payload)``.

    Each named payload is merged (later records win key-by-key) and written
    to ``BENCH_<name>.json`` when the session ends, so a smoke run and an
    opt-in ``--runbench`` run update the same file.
    """
    records: dict[str, dict] = {}

    def record(name: str, payload: dict) -> None:
        records.setdefault(name, {}).update(payload)

    yield record
    for name, payload in records.items():
        path = BENCH_DIR / f"BENCH_{name}.json"
        merged: dict = {}
        if path.exists():
            try:
                merged = json.loads(path.read_text())
            except (ValueError, OSError):
                merged = {}
        merged.update(payload)
        path.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="session")
def connections():
    return generate_connections(6000, seed=11)


@pytest.fixture(scope="session")
def split(connections):
    return connections.split(0.7, np.random.default_rng(5))


@pytest.fixture(scope="session")
def anomaly_dnn(split):
    train, __ = split
    model = anomaly_detection_dnn(seed=3)
    model.fit(dnn_feature_matrix(train), train.labels, epochs=25, batch_size=64)
    return model


@pytest.fixture(scope="session")
def anomaly_q(anomaly_dnn, split):
    train, __ = split
    return quantize_model(anomaly_dnn, dnn_feature_matrix(train)[:512])


@pytest.fixture(scope="session")
def experiment():
    return EndToEndExperiment.build(
        n_connections=4000, max_packets=120_000, epochs=20, seed=0
    )
