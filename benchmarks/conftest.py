"""Shared benchmark fixtures: trained models and workloads (session-scoped).

Each benchmark regenerates one of the paper's tables or figures, printing
the rows and writing them under ``results/``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import dnn_feature_matrix, generate_connections
from repro.fixpoint import quantize_model
from repro.ml import anomaly_detection_dnn
from repro.testbed import EndToEndExperiment


def pytest_configure(config):
    # Benchmarks print their tables; -s is not required because we also
    # persist everything under results/.
    pass


@pytest.fixture(scope="session")
def connections():
    return generate_connections(6000, seed=11)


@pytest.fixture(scope="session")
def split(connections):
    return connections.split(0.7, np.random.default_rng(5))


@pytest.fixture(scope="session")
def anomaly_dnn(split):
    train, __ = split
    model = anomaly_detection_dnn(seed=3)
    model.fit(dnn_feature_matrix(train), train.labels, epochs=25, batch_size=64)
    return model


@pytest.fixture(scope="session")
def anomaly_q(anomaly_dnn, split):
    train, __ = split
    return quantize_model(anomaly_dnn, dnn_feature_matrix(train)[:512])


@pytest.fixture(scope="session")
def experiment():
    return EndToEndExperiment.build(
        n_connections=4000, max_packets=120_000, epochs=20, seed=0
    )
