"""Figure 14: convergence vs epochs x batch size at sampling rate 1e-2.

Paper shape: "training with smaller batches and more epochs converges
faster" — 10 epochs / batch 64 reaches the target first; 1 epoch / batch
256 is slowest.
"""

from repro.core import render_table, series_to_text, write_result
from repro.testbed import OnlineTrainer

CONFIGS = ((1, 64), (1, 256), (10, 64), (10, 256))


def test_fig14(benchmark, split):
    train, test = split
    trainer = OnlineTrainer(
        train_pool=train, test_pool=test, packet_rate_pps=500_000, seed=1
    )

    def sweep():
        return {
            (epochs, batch): trainer.run(
                1e-2, batch_size=batch, epochs=epochs, horizon_s=3.0,
                max_updates=250,
            )
            for epochs, batch in CONFIGS
        }

    curves = benchmark.pedantic(sweep, rounds=1, iterations=1)
    target = 69.0
    rows = []
    for config in CONFIGS:
        curve = curves[config]
        reach = trainer.time_to_reach(curve, target)
        rows.append(
            [f"{config[0]}/{config[1]}",
             f"{curve[-1].f1_percent:.1f}",
             f"{reach * 1e3:.0f} ms" if reach is not None else ">3 s"]
        )
    table = render_table(
        f"Figure 14: epochs/batch vs convergence (sampling 1e-2, F1 >= {target})",
        ["epochs/batch", "final_f1", "time_to_target"],
        rows,
    )
    print("\n" + table)
    write_result("fig14_batch_epochs", table)
    series = {
        f"{e}/{b}": [(p.time_s, p.f1_percent) for p in curves[(e, b)]]
        for e, b in CONFIGS
    }
    write_result("fig14_series", series_to_text("fig14 F1 vs time", series))

    t = {c: trainer.time_to_reach(curves[c], target) or float("inf") for c in CONFIGS}
    # More epochs converge faster at fixed batch size.
    assert t[(10, 64)] <= t[(1, 64)]
    assert t[(10, 256)] <= t[(1, 256)]
    # Small-batch many-epoch is the fastest configuration overall (the
    # added training time is offset by faster convergence).
    assert t[(10, 64)] == min(t.values())
    # 1 epoch / batch 256 (fewest updates, least progress each) is slowest.
    assert t[(1, 256)] == max(t.values())
    # Every configuration converges within the window and improves F1.
    for config in CONFIGS:
        assert curves[config][-1].f1_percent > curves[config][0].f1_percent
