"""Figure 9: per-FU area and power across the CU design space
(lanes 4/8/16/32 x stages 2/3/4/6).

Shape to reproduce: per-FU cost falls with lane count (shared control
amortizes) and is nearly flat in stage count.
"""

from repro.core import render_table, series_to_text, write_result
from repro.hw import CUGeometry, fu_area_um2, fu_power_uw

LANES = (4, 8, 16, 32)
STAGES = (2, 3, 4, 6)


def sweep():
    return {
        (lanes, stages): (
            fu_area_um2(CUGeometry(lanes, stages)),
            fu_power_uw(CUGeometry(lanes, stages)),
        )
        for lanes in LANES
        for stages in STAGES
    }


def test_fig9(benchmark):
    results = benchmark(sweep)
    rows = [
        [lanes, stages, f"{area:.0f}", f"{power:.0f}"]
        for (lanes, stages), (area, power) in sorted(results.items())
    ]
    table = render_table(
        "Figure 9: per-FU area (um^2) and power (uW) vs lanes x stages",
        ["lanes", "stages", "area_per_fu", "power_per_fu"],
        rows,
    )
    print("\n" + table)
    write_result("fig9_cu_sweep", table)
    series = {
        f"stages={s}": [(float(l), results[(l, s)][0]) for l in LANES]
        for s in STAGES
    }
    write_result("fig9_area_series", series_to_text("fig9a area per FU", series))

    # Shape: monotone decrease with lanes for every stage count.
    for stages in STAGES:
        areas = [results[(lanes, stages)][0] for lanes in LANES]
        powers = [results[(lanes, stages)][1] for lanes in LANES]
        assert areas == sorted(areas, reverse=True)
        assert powers == sorted(powers, reverse=True)
    # Fig. 9a dynamic range: ~1.5k um^2 at 4 lanes down to ~0.5k at 32.
    assert 1300 < results[(4, 4)][0] < 1700
    assert 450 < results[(32, 4)][0] < 600
