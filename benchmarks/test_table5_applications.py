"""Table 5: performance and resource overheads of the application models
(KMeans / SVM / DNN at line rate; Indigo LSTM folded) plus the 12x10 grid.

Paper values: KMeans 1 GPkt/s, 61 ns, 0.3 mm^2 (+0.2%), 177 mW (+0.3%);
SVM 83 ns, 0.6 mm^2, 395 mW; DNN 221 ns, 1.0 mm^2, 647 mW; LSTM 805 ns,
3.0 mm^2, 1897 mW; grid 4.8 mm^2 (+3.8%), +2.8% power.
"""

import pytest

from repro.compiler import compile_graph
from repro.core import render_table, write_result
from repro.datasets import iot_cluster_dataset, svm_feature_matrix
from repro.hw import TaurusChip
from repro.mapreduce import dnn_graph, kmeans_graph, lstm_graph, svm_graph
from repro.ml import KMeans, RBFKernelSVM, indigo_lstm

PAPER = {  # name: (GPkt/s, ns, mm2, mW)
    "iot_kmeans": (1.0, 61, 0.3, 177),
    "anomaly_svm": (1.0, 83, 0.6, 395),
    "anomaly_dnn": (1.0, 221, 1.0, 647),
    "indigo_lstm": (None, 805, 3.0, 1897),
}


@pytest.fixture(scope="module")
def designs(anomaly_q, split):
    train, __ = split
    xi, __yi = iot_cluster_dataset(1500, seed=0)
    kmeans = KMeans(5, seed=0).fit(xi)
    svm = RBFKernelSVM(budget=16, epochs=2, seed=0)
    svm.fit(svm_feature_matrix(train)[:800], train.labels[:800])
    return {
        "iot_kmeans": compile_graph(kmeans_graph(kmeans, name="iot_kmeans")),
        "anomaly_svm": compile_graph(svm_graph(svm, name="anomaly_svm")),
        "anomaly_dnn": compile_graph(dnn_graph(anomaly_q, name="anomaly_dnn")),
        "indigo_lstm": compile_graph(
            lstm_graph(indigo_lstm(seed=0), name="indigo_lstm"),
            cu_budget=90, mu_budget=30,
        ),
    }


def test_table5(benchmark, designs):
    chip = TaurusChip()

    def overheads():
        return {name: chip.design_overheads(d) for name, d in designs.items()}

    reports = benchmark(overheads)
    grid = chip.grid_overheads()
    rows = []
    for name, report in reports.items():
        paper_rate, paper_ns, paper_mm2, paper_mw = PAPER[name]
        rate = f"{report.throughput_gpkt_s:.2f}" if paper_rate else "--"
        rows.append(
            [name, rate, f"{report.latency_ns:.0f}", f"({paper_ns})",
             f"{report.area_mm2:.2f}", f"({paper_mm2})",
             f"{report.area_percent:.1f}%",
             f"{report.power_mw:.0f}", f"({paper_mw})",
             f"{report.power_percent:.1f}%"]
        )
    rows.append(
        ["12x10 grid", "--", "--", "", f"{grid.area_mm2:.1f}", "(4.8)",
         f"{grid.area_percent:.1f}%", f"{grid.power_mw:.0f}", "", f"{grid.power_percent:.1f}%"]
    )
    table = render_table(
        "Table 5: application overheads (measured vs paper in parens)",
        ["model", "GPkt/s", "ns", "paper", "mm^2", "paper", "+area",
         "mW", "paper", "+power"],
        rows,
    )
    print("\n" + table)
    write_result("table5_applications", table)

    # Shape assertions.
    assert reports["iot_kmeans"].latency_ns < reports["anomaly_svm"].latency_ns
    assert reports["anomaly_svm"].latency_ns < reports["anomaly_dnn"].latency_ns
    assert reports["anomaly_dnn"].latency_ns < reports["indigo_lstm"].latency_ns
    for name in ("iot_kmeans", "anomaly_svm", "anomaly_dnn"):
        assert reports[name].throughput_gpkt_s == 1.0     # line rate
        assert reports[name].area_percent < 1.5           # small overhead
    assert reports["indigo_lstm"].throughput_gpkt_s < 1.0
    # Magnitudes within a reasonable band of the paper.
    assert reports["iot_kmeans"].latency_ns == pytest.approx(61, abs=25)
    assert reports["anomaly_svm"].latency_ns == pytest.approx(83, abs=25)
    assert reports["anomaly_dnn"].latency_ns == pytest.approx(221, abs=80)
    assert reports["indigo_lstm"].latency_ns == pytest.approx(805, abs=120)
    # Grid-level overheads match the paper's headline numbers.
    assert grid.area_percent == pytest.approx(3.8, abs=0.2)
    assert grid.power_percent == pytest.approx(2.8, abs=0.2)


def test_table5_switch_latency_overhead(designs):
    """Section 5.1.2: added latency vs a 1 us switch (6.1/8.3/22.1%)."""
    chip = TaurusChip()
    kmeans_pct = chip.switch_latency_overhead_percent(designs["iot_kmeans"])
    dnn_pct = chip.switch_latency_overhead_percent(designs["anomaly_dnn"])
    assert 3 < kmeans_pct < 10
    assert 12 < dnn_pct < 30
