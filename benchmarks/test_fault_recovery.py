"""Fault-tolerance cost: heartbeat overhead + crash-recovery latency.

Not a paper table: this prices PR 7's crash-transparent pool runs.  Two
questions matter for the serving-substrate shape the pool targets:

1. **What do heartbeats cost when nothing fails?**  Every fork worker
   now runs a watchdog heartbeat thread and the parent select()s on the
   response pipe with a deadline.  ``hb_relative_throughput`` is
   steady-state warm-pool throughput with heartbeats enabled (the
   default) over the same pool with heartbeats off — it must stay near
   1.0, and ``BENCH_pool_runtime.json``'s floors (recorded with
   heartbeats on) already hold the absolute trajectory.
2. **What does a crash cost when one happens?**  ``recovery_latency_s``
   is the wall-clock a SIGKILLed worker adds to an otherwise identical
   run — re-fork from parent state plus chunk replay — and
   ``recovered_identical`` records that the faulted run's results
   matched the unfaulted ones bit-for-bit (also asserted).

The smoke variant runs in tier-1; ``--runbench`` adds a larger trace
and more repeats.  Both update ``BENCH_fault_recovery.json``;
``benchmarks/check_bench.py`` floors the heartbeat ratio and the
identity flag.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core import render_table, write_result
from repro.datasets import dnn_feature_matrix, expand_to_packets
from repro.runtime import FaultPlan, available_parallelism
from repro.testbed.dataplane import TaurusDataPlane

HAS_FORK = hasattr(os, "fork")
pytestmark = pytest.mark.skipif(
    not HAS_FORK, reason="fault recovery needs the fork pool"
)

SHARDS = 2


def _timed_runs(plane, trace, repeats, chunk_size):
    result = plane.run_switch(trace, chunk_size=chunk_size)  # warmup
    t0 = time.perf_counter()
    for __ in range(repeats):
        result = plane.run_switch(trace, chunk_size=chunk_size)
    return (time.perf_counter() - t0) / repeats, result


def _measure(quantized, trace, repeats, chunk_size=512) -> dict:
    trace.columns()  # prime the cached columnar view outside the timers
    reference = TaurusDataPlane(quantized).run_switch(
        trace, chunk_size=chunk_size
    )

    # -- heartbeat overhead (steady state, no faults) -------------------
    with TaurusDataPlane(
        quantized, shards=SHARDS, executor="fork", pool=True
    ) as hb_plane:
        hb_s, hb_result = _timed_runs(hb_plane, trace, repeats, chunk_size)
    assert hb_result == reference, "heartbeat pool diverged from the oracle"
    with TaurusDataPlane(
        quantized, shards=SHARDS, executor="fork", pool=True,
        pool_options={"heartbeat_interval": None},
    ) as quiet_plane:
        quiet_s, quiet_result = _timed_runs(
            quiet_plane, trace, repeats, chunk_size
        )
    assert quiet_result == reference, "quiet pool diverged from the oracle"

    # -- recovery latency (one injected kill per timed run) -------------
    plan = FaultPlan()
    with TaurusDataPlane(
        quantized, shards=SHARDS, executor="fork", pool=True,
        pool_options={"faults": plan, "retry_backoff": 0.01},
    ) as faulted_plane:
        faulted_plane.run_switch(trace, chunk_size=chunk_size)  # warmup
        steady_s = 0.0
        faulted_s = 0.0
        crashes = 0
        for i in range(repeats):
            plan.add(i % SHARDS, 1, "kill")
            t0 = time.perf_counter()
            faulted = faulted_plane.run_switch(trace, chunk_size=chunk_size)
            faulted_s += time.perf_counter() - t0
            assert faulted == reference, "faulted run diverged"
        crashes = faulted_plane.pool_health.crashes
        steady_s = hb_s * repeats
    recovery_s = max(0.0, faulted_s - steady_s) / max(crashes, 1)

    return {
        "n_packets": int(len(trace)),
        "repeats": int(repeats),
        "chunk_size": int(chunk_size),
        "shards": SHARDS,
        "host_cpus": int(available_parallelism()),
        "hb_per_run_s": hb_s,
        "quiet_per_run_s": quiet_s,
        "hb_relative_throughput": quiet_s / max(hb_s, 1e-12),
        "crashes_injected": int(crashes),
        "recovery_latency_s": recovery_s,
        "recovered_identical": 1.0,  # asserted above; recorded for floors
    }


def _report(name: str, payload: dict) -> None:
    table = render_table(
        f"Crash-transparent pool runs ({name}): "
        f"{payload['n_packets']} packets x {payload['repeats']} runs, "
        f"{payload['shards']} shards, {payload['host_cpus']} host CPU(s)",
        ["metric", "value"],
        [
            ["warm pool s/run (heartbeats on)",
             f"{payload['hb_per_run_s']*1e3:.1f} ms"],
            ["warm pool s/run (heartbeats off)",
             f"{payload['quiet_per_run_s']*1e3:.1f} ms"],
            ["relative throughput w/ heartbeats",
             f"{payload['hb_relative_throughput']:.2f}x"],
            ["crashes injected", str(payload["crashes_injected"])],
            ["recovery latency per crash",
             f"{payload['recovery_latency_s']*1e3:.1f} ms"],
            ["faulted runs bit-identical",
             "yes" if payload["recovered_identical"] else "NO"],
        ],
    )
    print("\n" + table)
    write_result("fault_recovery", table)


@pytest.mark.smoke
def test_fault_recovery_smoke(experiment, bench_json):
    """Tier-1-safe: heartbeats near-free, one injected kill per run
    recovered bit-identically."""
    live = experiment.workload.live
    trace = expand_to_packets(
        live,
        feature_matrix=dnn_feature_matrix(live),
        max_packets=1500,
        seed=43,
    )
    result = _measure(experiment.dataplane.quantized, trace, repeats=3)
    bench_json("fault_recovery", {"smoke": result})
    _report("smoke", result)
    assert result["hb_relative_throughput"] > 0.5
    assert result["crashes_injected"] >= 1


@pytest.mark.bench
def test_fault_recovery_full(experiment, bench_json):
    """Opt-in: a larger trace and more injected crashes."""
    live = experiment.workload.live
    trace = expand_to_packets(
        live,
        feature_matrix=dnn_feature_matrix(live),
        max_packets=6000,
        seed=44,
    )
    result = _measure(experiment.dataplane.quantized, trace, repeats=6)
    bench_json("fault_recovery", {"full_trace": result})
    _report("full trace", result)
    assert result["hb_relative_throughput"] > 0.5
    assert result["crashes_injected"] >= 1
